// Arena-backed farm execution layer.
//
// Three structural changes over the task-per-shard farm that
// tests/reference_session_farm.cpp preserves (and the differential suite
// diffs against, element-wise per session):
//
//  * Arena/SoA session state: every per-session object lives in a pre-sized
//    per-shard SessionArena (exp/session_arena.hpp).  Single-hop sessions
//    are flattened -- channels and engines are direct members, no
//    unique_ptr indirection -- and their slots are recycled through a
//    free list once quiescent, so steady-state arrival/teardown performs
//    zero heap allocations (asserted by tests via the arena counters and
//    EventCallback::heap_allocations()).
//  * Persistent per-core shard workers: instead of fanning one task per
//    shard through parallel_for, each of W = min(threads, shards) workers
//    owns the strided shard set {w, w+W, ...} and advances each shard's
//    Simulator in time slices (Simulator::run_slice), with batched
//    timer-expiry delivery amortizing queue pops on the refresh-storm hot
//    path.
//  * Exact peak_sessions_in_flight: the reduce step merges every session's
//    [begin, completion] endpoints across shards and sweeps them globally,
//    replacing the summed-per-shard upper bound.
//
// The determinism contract is unchanged and load-bearing: per-session
// randomness stays keyed to the global session index, shard boundaries stay
// fixed by shard_size alone, and per-session metrics are reduced in global
// session order.  The rewrite is bit-identical to the reference farm at any
// thread count and shard size because every shard's EVENT STREAM is
// identical:
//
//  * The reference constructs all sessions up front, and each construction
//    pushes exactly ONE event (the arrival; everything else a session ctor
//    does is passive).  The arena farm's pre-scan pushes the same arrival
//    events, in the same session order (same seqs), at the same times --
//    it re-derives each arrival from a fresh kSessionLifecycle stream, the
//    same first draw the session itself repeats at spawn time.
//  * When an arrival fires, the session is placement-constructed (passive)
//    and begin() runs inside that same event -- exactly the work the
//    reference's arrival event performs, pushing the same follow-up events
//    in the same order.  By induction the two farms' queues hold identical
//    (time, seq) sets at every step, and run_slice dispatches in exact pop
//    order, so every RNG draw, message and metric lands identically.
#include "exp/session_farm.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/rng_streams.hpp"
#include "exp/session_arena.hpp"
#include "exp/thread_pool.hpp"
#include "protocols/engine.hpp"
#include "protocols/topology.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace sigcomp::exp {

namespace {

using protocols::MessageChannel;
using protocols::Message;

/// Slice width of the shard workers' round-robin (simulated seconds).  A
/// pure performance knob: each slice is anchored at the shard's next
/// pending event, and run_slice preserves exact pop order, so any width
/// yields the same results.  10 s spans several refresh periods, batching
/// enough expiries per drain to amortize the pops.
constexpr double kSliceSeconds = 10.0;

void validate_options(const SessionFarmOptions& options) {
  if (options.sessions == 0) {
    throw std::invalid_argument("SessionFarmOptions: sessions must be > 0");
  }
  if (options.arrival_rate <= 0.0) {
    throw std::invalid_argument("SessionFarmOptions: arrival_rate must be > 0");
  }
  if (options.session_lifetime <= 0.0) {
    throw std::invalid_argument(
        "SessionFarmOptions: session_lifetime must be > 0");
  }
  if (options.shard_size == 0) {
    throw std::invalid_argument("SessionFarmOptions: shard_size must be > 0");
  }
  options.leaf_churn.validate();
  options.scenario.validate();
}

/// Where sessions deposit their results, indexed by the session's local
/// (within-shard) index so completion order cannot affect anything.
/// Completion-time recording replaces the reference farm's
/// read-the-session-at-shard-end extraction: recycled sessions are
/// destroyed long before the shard finishes, so everything a session will
/// ever report is captured the moment it completes.
struct ShardSink {
  std::vector<Metrics> metrics;              ///< per local index
  std::vector<protocols::ChurnReport> churn;  ///< per local index
  std::vector<double> arrival;  ///< begin times, filled by the pre-scan
  std::vector<double> end;      ///< completion times, filled on completion
  std::uint64_t messages = 0;
  std::uint64_t receiver_timeouts = 0;
  std::uint64_t relay_crashes = 0;
  std::uint64_t relay_recoveries = 0;
  std::size_t completed = 0;
  /// Hands a completed session's slot to the arena's cooling list.  Bound
  /// by the shard (captures one pointer; fits the std::function SBO, so
  /// completion stays allocation-free).
  std::function<void(std::uint32_t)> retire;
};

/// Per-session randomness: eight independent streams keyed to the session's
/// global index, mirroring the stream layout of the single-hop harness
/// (the membership and scenario streams are consumed only by tree sessions
/// that enable the corresponding workload).
/// The stream IDs come from the registry in core/rng_streams.hpp -- the
/// farm layout and the single-hop harness layout are the SAME constants,
/// which is what makes the mirroring self-evident.
struct SessionRngs {
  sim::Rng channel;
  sim::Rng sender;
  sim::Rng receiver;
  sim::Rng lifecycle;
  sim::Rng failure;
  sim::Rng membership;
  sim::Rng scenario_arrival;
  sim::Rng scenario_failure;

  SessionRngs(std::uint64_t base_seed, std::uint64_t global_index)
      : channel(session_seed(base_seed, global_index), rng::kSessionChannel),
        sender(session_seed(base_seed, global_index), rng::kSessionSender),
        receiver(session_seed(base_seed, global_index), rng::kSessionReceiver),
        lifecycle(session_seed(base_seed, global_index),
                  rng::kSessionLifecycle),
        failure(session_seed(base_seed, global_index), rng::kSessionFailure),
        membership(session_seed(base_seed, global_index),
                   rng::kSessionMembership),
        scenario_arrival(session_seed(base_seed, global_index),
                         rng::kSessionScenarioArrival),
        scenario_failure(session_seed(base_seed, global_index),
                         rng::kSessionScenarioFailure) {}

 private:
  /// The per-session seed family: replica_seed keyed to the session's
  /// global index (replica lane 0 -- the substream split happens in
  /// sim::Rng's stream argument, not here).
  static std::uint64_t session_seed(std::uint64_t base_seed,
                                    std::uint64_t global_index) {
    return replica_seed(base_seed, global_index, 0);
  }
};

/// One single-hop session: arrival -> install -> updates -> removal ->
/// absorption, measured over [arrival, absorption].  A one-shot version of
/// the renewal construction in protocols/single_hop_run.cpp, flattened for
/// arena placement: channels and engines are direct members (every closure
/// they store captures one pointer and stays inside its small-buffer
/// storage), so constructing a session in a recycled slot allocates
/// nothing.  Constructed INSIDE its own pre-scanned arrival event; the
/// shard calls begin() immediately after.
class SingleHopSession {
 public:
  SingleHopSession(sim::Simulator& sim, ProtocolKind kind,
                   const SingleHopParams& params,
                   const SessionFarmOptions& options,
                   std::uint64_t global_index, ShardSink& sink,
                   std::size_t local)
      : sim_(sim),
        params_(params),
        options_(options),
        mech_(mechanisms(kind)),
        sink_(sink),
        local_(local),
        rngs_(options.seed, global_index),
        forward_(sim, rngs_.channel, params.loss_config(),
                 sim::DelayConfig{options.delay_model, params.delay,
                                  options.delay_shape},
                 [this](const Message& m) { receiver_.handle(m); }),
        reverse_(sim, rngs_.channel, params.loss_config(),
                 sim::DelayConfig{options.delay_model, params.delay,
                                  options.delay_shape},
                 [this](const Message& m) { sender_.handle(m); }),
        sender_(sim_, rngs_.sender, mech_,
                protocols::TimerSettings{options.timer_dist,
                                         params.refresh_timer,
                                         params.timeout_timer,
                                         params.retrans_timer},
                forward_, [this] { on_change(); }),
        receiver_(sim_, rngs_.receiver, mech_,
                  protocols::TimerSettings{options.timer_dist,
                                           params.refresh_timer,
                                           params.timeout_timer,
                                           params.retrans_timer},
                  reverse_, [this] { on_change(); }) {
    // Staggered Poisson arrivals: conditioned on N arrivals in the window,
    // arrival times are iid uniform over it -- and drawing from the
    // session's own stream keys the time to the global index alone.  The
    // draw repeats the pre-scan's (same stream, same first draw), so the
    // session materializes at exactly the time its arrival event fired.
    const double window =
        static_cast<double>(options.sessions) / options.arrival_rate;
    arrival_ = window * rngs_.lifecycle.uniform();
    lifetime_ = rngs_.lifecycle.exponential(options.session_lifetime);
  }

  /// The arena slot this session occupies; handed back on retirement.
  void set_slot(std::uint32_t slot) noexcept { slot_ = slot; }

  /// Starts the session (the body of its arrival event).
  void begin() {
    inconsistent_ = sim::TimeWeightedValue(arrival_);
    sender_.begin_epoch(1);
    receiver_.begin_epoch(1);
    sender_.install(++version_);
    schedule_update();
    removal_event_ = sim_.schedule_in(lifetime_, [this] {
      removal_event_.reset();
      sender_removed_ = true;
      sender_.remove();
      check_absorption();
    });
    if (mech_.external_failure_detector && params_.false_signal_rate > 0.0) {
      schedule_false_signal();
    }
    on_change();
  }

  /// Slot-recycling safety: absorbed AND both channels drained.  After
  /// absorption both engines sit in a dead epoch with every timer
  /// cancelled, and a stale delivery is dropped without a reply, so the
  /// in-flight counts fall monotonically to zero -- after which no pending
  /// event references this object and destruction is safe.
  [[nodiscard]] bool quiescent() const noexcept {
    if (!done_) return false;
    const sim::ChannelCounters& f = forward_.counters();
    const sim::ChannelCounters& r = reverse_.counters();
    return f.sent == f.delivered + f.lost && r.sent == r.delivered + r.lost;
  }

 private:
  void schedule_update() {
    if (params_.update_rate <= 0.0) return;
    update_event_ = sim_.schedule_in(
        rngs_.lifecycle.exponential(1.0 / params_.update_rate), [this] {
          update_event_.reset();
          if (!sender_removed_ && sender_.value()) {
            sender_.update(++version_);
          }
          schedule_update();
        });
  }

  void schedule_false_signal() {
    false_signal_event_ = sim_.schedule_in(
        rngs_.failure.exponential(1.0 / params_.false_signal_rate), [this] {
          false_signal_event_.reset();
          receiver_.external_removal_signal();
          schedule_false_signal();
        });
  }

  void cancel(std::optional<sim::EventId>& id) {
    if (id) {
      sim_.cancel(*id);
      id.reset();
    }
  }

  void on_change() {
    if (done_) return;
    const bool consistent = sender_.value() == receiver_.value();
    inconsistent_.set(sim_.now(), consistent ? 0.0 : 1.0);
    check_absorption();
  }

  void check_absorption() {
    if (done_ || !sender_removed_ || receiver_.value()) return;
    done_ = true;
    const double end = sim_.now();
    const double length = end - arrival_;
    // Counters frozen at absorption time, so results cannot depend on which
    // straggler events the shard's simulator happened to execute afterwards.
    const std::uint64_t messages =
        forward_.counters().sent + reverse_.counters().sent;
    const auto sent = static_cast<double>(messages);
    Metrics& metrics = sink_.metrics[local_];
    metrics.inconsistency = inconsistent_.mean(end);
    metrics.session_length = length;
    metrics.raw_message_rate = length > 0.0 ? sent / length : 0.0;
    // M-bar = (messages per session) * lambda_r, as in Eq. (2); the farm's
    // removal rate is 1 / mean lifetime.
    metrics.message_rate = sent / options_.session_lifetime;
    cancel(update_event_);
    cancel(false_signal_event_);
    cancel(removal_event_);
    // Jump both engines to a dead epoch: stragglers still in flight can no
    // longer resurrect state, re-arm timers or send replies -- which is
    // also what drives quiescent()'s in-flight counts to zero.
    sender_.begin_epoch(2);
    receiver_.begin_epoch(2);
    sink_.end[local_] = end;
    sink_.messages += messages;
    sink_.receiver_timeouts += receiver_.timeouts();
    ++sink_.completed;
    sink_.retire(slot_);
  }

  sim::Simulator& sim_;
  // The shard keeps params/options alive for the sessions' whole lifetime;
  // 100k sessions should not hold 100k copies.
  const SingleHopParams& params_;
  const SessionFarmOptions& options_;
  MechanismSet mech_;
  ShardSink& sink_;
  std::size_t local_;
  std::uint32_t slot_ = 0;
  SessionRngs rngs_;
  MessageChannel forward_;
  MessageChannel reverse_;
  protocols::SenderEngine sender_;
  protocols::ReceiverEngine receiver_;

  double arrival_ = 0.0;
  double lifetime_ = 0.0;
  std::int64_t version_ = 0;
  bool sender_removed_ = false;
  bool done_ = false;
  sim::TimeWeightedValue inconsistent_;
  std::optional<sim::EventId> update_event_;
  std::optional<sim::EventId> removal_event_;
  std::optional<sim::EventId> false_signal_event_;
};

/// One tree session: arrival -> start -> updates over a full
/// protocols::Topology -- one sender, relays at interior nodes, receivers
/// at the leaves, per-edge channels.  Chain sessions run through this very
/// class as fan-out-1 trees.  Measured over the lifetime window
/// [arrival, arrival + lifetime], then silently torn down with
/// Topology::stop().
///
/// Tree sessions are arena-placed but NEVER recycled: quiescent() is
/// constant false, so a finished tree stays constructed (absorbing
/// stragglers harmlessly) until the arena is destroyed -- the same memory
/// behavior as the reference farm, which keeps every session alive to the
/// end of its shard.  Proving tree quiescence would need in-flight
/// accounting across every edge of every session for a workload (the 1M
/// scale leg is single-hop) that does not recycle anyway.
class TreeSession {
 public:
  TreeSession(sim::Simulator& sim, ProtocolKind kind,
              const analytic::TreeParams& params,
              const SessionFarmOptions& options, std::uint64_t global_index,
              ShardSink& sink, std::size_t local)
      : sim_(sim),
        params_(params),
        options_(options),
        mech_(mechanisms(kind)),
        sink_(sink),
        local_(local),
        rngs_(options.seed, global_index) {
    protocols::TimerSettings timers{options.timer_dist, params.refresh_timer,
                                    params.timeout_timer,
                                    params.retrans_timer};
    std::vector<sim::LossConfig> edge_loss;
    std::vector<sim::DelayConfig> edge_delay;
    edge_loss.reserve(params.edges());
    edge_delay.reserve(params.edges());
    for (std::size_t e = 0; e < params.edges(); ++e) {
      edge_loss.push_back(params.edge_loss_config(e));
      edge_delay.push_back(sim::DelayConfig{options.delay_model,
                                            params.delay[e],
                                            options.delay_shape});
    }
    topology_ = std::make_unique<protocols::Topology>(
        sim, rngs_.channel, rngs_.sender, mech_, timers, params.tree,
        edge_loss, edge_delay, [this] { on_change(); });
    if (options.leaf_churn.enabled() ||
        options.scenario.membership_processes()) {
      membership_ = std::make_unique<protocols::MembershipController>(
          sim, *topology_, rngs_.membership, options.leaf_churn,
          options.scenario, &rngs_.scenario_arrival, [this] { on_change(); });
    }
    if (options.scenario.failure.enabled()) {
      failure_ = std::make_unique<protocols::RelayFailureProcess>(
          sim, *topology_, rngs_.scenario_failure, options.scenario.failure,
          mech_.external_failure_detector);
    }
    const double window =
        static_cast<double>(options.sessions) / options.arrival_rate;
    arrival_ = window * rngs_.lifecycle.uniform();
    lifetime_ = rngs_.lifecycle.exponential(options.session_lifetime);
  }

  /// The arena slot this session occupies (unused: trees never retire, but
  /// the shard's spawn path is session-type-agnostic).
  void set_slot(std::uint32_t slot) noexcept { slot_ = slot; }

  /// Starts the session (the body of its arrival event).
  void begin() {
    inconsistent_ = sim::TimeWeightedValue(arrival_);
    topology_->sender().start(++version_);
    schedule_update();
    if (mech_.external_failure_detector && params_.false_signal_rate > 0.0) {
      false_signal_events_.resize(topology_->relays());
      for (std::size_t i = 0; i < topology_->relays(); ++i) {
        schedule_false_signal(i);
      }
    }
    if (membership_) membership_->start();
    if (failure_) failure_->start();
    sim_.schedule_in(lifetime_, [this] { finish(); });
    on_change();
  }

  /// Never recyclable -- see the class comment.
  [[nodiscard]] bool quiescent() const noexcept { return false; }

 private:
  void schedule_update() {
    if (params_.update_rate <= 0.0) return;
    update_event_ = sim_.schedule_in(
        rngs_.lifecycle.exponential(1.0 / params_.update_rate), [this] {
          update_event_.reset();
          topology_->sender().update(++version_);
          schedule_update();
        });
  }

  void schedule_false_signal(std::size_t relay) {
    false_signal_events_[relay] = sim_.schedule_in(
        rngs_.failure.exponential(1.0 / params_.false_signal_rate),
        [this, relay] {
          false_signal_events_[relay].reset();
          topology_->relay(relay).external_removal_signal();
          schedule_false_signal(relay);
        });
  }

  void on_change() {
    if (done_) return;
    if (membership_) membership_->on_state_change();
    bool all_ok = true;
    for (std::size_t i = 0; i < topology_->relays(); ++i) {
      // Required nodes must mirror the sender; detached nodes must hold
      // nothing (without churn every node is required -- the historical
      // definition, bit for bit).
      const bool ok = topology_->node_required(i + 1)
                          ? topology_->relay(i).value() ==
                                topology_->sender().value()
                          : !topology_->relay(i).value().has_value();
      all_ok = all_ok && ok;
    }
    inconsistent_.set(sim_.now(), all_ok ? 0.0 : 1.0);
  }

  void finish() {
    done_ = true;
    const double end = sim_.now();
    if (membership_) {
      membership_->finish();
      sink_.churn[local_] = membership_->report();
    }
    if (failure_) {
      // Cancel the pending crash/recovery/detection events BEFORE the
      // counters are frozen, so no scenario event straggles past the
      // window (the teardown tests pin a flat event pool).
      failure_->stop();
      sink_.relay_crashes += failure_->crashes();
      sink_.relay_recoveries += failure_->recoveries();
    }
    // Counters frozen at window end: stragglers delivered to a stopped
    // tree may still execute (and even re-install relay state briefly),
    // and how many do depends on how long the shard keeps simulating --
    // snapshotting keeps results independent of the shard decomposition.
    const std::uint64_t messages = topology_->messages_sent();
    const auto sent = static_cast<double>(messages);
    Metrics& metrics = sink_.metrics[local_];
    metrics.inconsistency = inconsistent_.mean(end);
    metrics.session_length = lifetime_;
    metrics.raw_message_rate = lifetime_ > 0.0 ? sent / lifetime_ : 0.0;
    metrics.message_rate = metrics.raw_message_rate;
    if (update_event_) {
      sim_.cancel(*update_event_);
      update_event_.reset();
    }
    for (auto& id : false_signal_events_) {
      if (id) sim_.cancel(*id);
    }
    false_signal_events_.clear();
    topology_->stop();
    sink_.end[local_] = end;
    sink_.messages += messages;
    sink_.receiver_timeouts += topology_->relay_timeouts();
    ++sink_.completed;
    // No sink_.retire: the slot cools forever (never quiescent).
  }

  sim::Simulator& sim_;
  const analytic::TreeParams& params_;
  const SessionFarmOptions& options_;
  MechanismSet mech_;
  ShardSink& sink_;
  std::size_t local_;
  std::uint32_t slot_ = 0;
  SessionRngs rngs_;
  std::unique_ptr<protocols::Topology> topology_;
  std::unique_ptr<protocols::MembershipController> membership_;
  std::unique_ptr<protocols::RelayFailureProcess> failure_;

  double arrival_ = 0.0;
  double lifetime_ = 0.0;
  std::int64_t version_ = 0;
  bool done_ = false;
  sim::TimeWeightedValue inconsistent_;
  std::optional<sim::EventId> update_event_;
  std::vector<std::optional<sim::EventId>> false_signal_events_;
};

/// Everything one shard reports back to the aggregator.
struct ShardOutcome {
  std::vector<Metrics> per_session;  ///< in global session order
  /// Per-session churn reports in global session order: summed by the
  /// aggregator in that order, so the reduced report cannot depend on the
  /// shard decomposition (floating-point addition is order-sensitive).
  std::vector<protocols::ChurnReport> per_session_churn;
  std::vector<double> arrival;  ///< per-session begin times
  std::vector<double> end;      ///< per-session completion times
  std::uint64_t messages = 0;
  std::uint64_t events = 0;
  std::uint64_t receiver_timeouts = 0;
  std::uint64_t relay_crashes = 0;
  std::uint64_t relay_recoveries = 0;
  double end_time = 0.0;
  std::size_t arena_high_water = 0;
  std::size_t arena_chunks = 0;
};

/// Sessions [first, first + count) of the farm: one Simulator, one arena,
/// one sink.  Construction pre-scans the arrivals; a shard worker then
/// drives advance_slice() until complete().
template <typename Session, typename Params>
class Shard {
 public:
  Shard(ProtocolKind kind, const Params& params,
        const SessionFarmOptions& options, std::size_t first,
        std::size_t count)
      : kind_(kind),
        params_(params),
        options_(options),
        first_(first),
        count_(count),
        sim_(options.event_queue),
        arena_(count) {
    sink_.metrics.resize(count);
    sink_.churn.resize(count);
    sink_.arrival.resize(count);
    sink_.end.resize(count);
    sink_.retire = [this](std::uint32_t slot) { arena_.retire(slot); };
    // Arrival pre-scan: push one arrival event per session, in session
    // order, at the time the session will re-derive for itself at spawn --
    // the first draw of a fresh kSessionLifecycle stream.  This reproduces
    // the reference farm's construction-time pushes exactly (same times,
    // same seq order), which is the base case of the bit-identity argument
    // in the file comment.
    const double window =
        static_cast<double>(options.sessions) / options.arrival_rate;
    for (std::size_t i = 0; i < count; ++i) {
      const auto g = static_cast<std::uint64_t>(first + i);
      sim::Rng lifecycle(replica_seed(options.seed, g, 0),
                         rng::kSessionLifecycle);
      const double arrival = window * lifecycle.uniform();
      sink_.arrival[i] = arrival;
      sim_.schedule_at(arrival, [this, g, i] { spawn(g, i); });
    }
  }

  [[nodiscard]] bool complete() const noexcept {
    return sink_.completed >= count_;
  }

  /// Advances one time slice, anchored at the next pending event.  Returns
  /// as soon as the shard completes mid-slice (undispatched expiries are
  /// requeued untouched), leaving the clock on the completing event.
  void advance_slice() {
    const std::optional<double> next = sim_.next_pending_time();
    if (!next) {
      throw std::logic_error("session farm: shard stalled before completing");
    }
    sim_.run_slice(*next + kSliceSeconds, [this] { return complete(); });
  }

  /// Extracts the shard's results (call once, after completion).
  ShardOutcome finish() {
    ShardOutcome out;
    out.per_session = std::move(sink_.metrics);
    out.per_session_churn = std::move(sink_.churn);
    out.arrival = std::move(sink_.arrival);
    out.end = std::move(sink_.end);
    out.messages = sink_.messages;
    out.receiver_timeouts = sink_.receiver_timeouts;
    out.relay_crashes = sink_.relay_crashes;
    out.relay_recoveries = sink_.relay_recoveries;
    out.events = sim_.events_executed();
    out.end_time = sim_.now();
    out.arena_high_water = arena_.slot_capacity();
    out.arena_chunks = arena_.chunk_allocations();
    return out;
  }

 private:
  void spawn(std::uint64_t global_index, std::size_t local) {
    const auto [slot, session] = arena_.spawn(
        sim_, kind_, params_, options_, global_index, sink_, local);
    session->set_slot(slot);
    session->begin();
  }

  ProtocolKind kind_;
  const Params& params_;
  const SessionFarmOptions& options_;
  std::size_t first_;
  std::size_t count_;
  ShardSink sink_;
  sim::Simulator sim_;
  // Declared after sim_ so sessions are destroyed BEFORE the simulator
  // (their destructors may cancel events); pending closures that still
  // point at destroyed sessions are merely destroyed with the queue, never
  // invoked.
  SessionArena<Session> arena_;
};

template <typename Session, typename Params>
SessionFarmResult run_farm(ProtocolKind kind, const Params& params,
                           const SessionFarmOptions& options) {
  validate_options(options);
  params.validate();

  const std::size_t n = options.sessions;
  const std::size_t shard_size = std::min(options.shard_size, n);
  const std::size_t shards = (n + shard_size - 1) / shard_size;

  std::optional<ParallelSweep> local_engine;
  ParallelSweep* engine = options.engine;
  if (engine == nullptr) {
    local_engine.emplace(options.threads);
    engine = &*local_engine;
  }

  // Persistent per-core shard workers: worker w owns the strided shard set
  // {w, w + W, ...}, builds every owned shard up front, and round-robins
  // one time slice per incomplete shard until all of them finish.
  // Ownership and slicing cannot affect results: shards are independent
  // simulators and run_slice preserves exact pop order, so this is the
  // task-per-shard farm's schedule merely interleaved differently in
  // wall-clock time.
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(engine->threads(), shards));
  std::vector<ShardOutcome> outcomes(shards);
  parallel_for(engine->pool(), workers, [&](std::size_t w) {
    std::vector<std::unique_ptr<Shard<Session, Params>>> owned;
    for (std::size_t s = w; s < shards; s += workers) {
      const std::size_t first = s * shard_size;
      const std::size_t count = std::min(shard_size, n - first);
      owned.push_back(std::make_unique<Shard<Session, Params>>(
          kind, params, options, first, count));
    }
    bool all_done = false;
    while (!all_done) {
      all_done = true;
      for (auto& shard : owned) {
        if (shard->complete()) continue;
        shard->advance_slice();
        all_done = all_done && shard->complete();
      }
    }
    std::size_t next = 0;
    for (std::size_t s = w; s < shards; s += workers) {
      outcomes[s] = owned[next++]->finish();
    }
  });

  SessionFarmResult result;
  result.shards = shards;
  std::vector<Metrics> all_sessions;
  all_sessions.reserve(n);
  std::vector<double> starts;
  std::vector<double> ends;
  starts.reserve(n);
  ends.reserve(n);
  for (ShardOutcome& outcome : outcomes) {
    all_sessions.insert(all_sessions.end(), outcome.per_session.begin(),
                        outcome.per_session.end());
    for (const protocols::ChurnReport& churn : outcome.per_session_churn) {
      result.churn.absorb(churn);
    }
    result.messages += outcome.messages;
    result.events_executed += outcome.events;
    result.receiver_timeouts += outcome.receiver_timeouts;
    result.relay_crashes += outcome.relay_crashes;
    result.relay_recoveries += outcome.relay_recoveries;
    result.horizon = std::max(result.horizon, outcome.end_time);
    result.arena_slot_high_water =
        std::max(result.arena_slot_high_water, outcome.arena_high_water);
    result.arena_chunk_allocations += outcome.arena_chunks;
    starts.insert(starts.end(), outcome.arrival.begin(), outcome.arrival.end());
    ends.insert(ends.end(), outcome.end.begin(), outcome.end.end());
  }
  // Exact global peak: merge every session's [begin, completion] endpoints
  // across shards and sweep.  A start at exactly an end's time counts as
  // overlapping (starts first at ties), matching the in-simulator
  // convention that a session is in flight from begin() through its
  // completion event.
  std::sort(starts.begin(), starts.end());
  std::sort(ends.begin(), ends.end());
  std::size_t active = 0;
  std::size_t next_end = 0;
  for (const double start : starts) {
    while (next_end < ends.size() && ends[next_end] < start) {
      --active;
      ++next_end;
    }
    ++active;
    result.peak_sessions_in_flight =
        std::max(result.peak_sessions_in_flight, active);
  }
  result.sessions = all_sessions.size();
  result.summary = summarize_replicas(all_sessions);
  if (options.keep_per_session) result.per_session = std::move(all_sessions);
  return result;
}

}  // namespace

SessionFarmResult run_session_farm(ProtocolKind kind,
                                   const SingleHopParams& params,
                                   const SessionFarmOptions& options) {
  if (options.leaf_churn.enabled()) {
    throw std::invalid_argument(
        "run_session_farm: leaf churn needs tree or chain sessions");
  }
  if (options.scenario.enabled()) {
    throw std::invalid_argument(
        "run_session_farm: scenario processes need tree or chain sessions");
  }
  return run_farm<SingleHopSession>(kind, params, options);
}

SessionFarmResult run_session_farm(ProtocolKind kind,
                                   const MultiHopParams& params,
                                   const SessionFarmOptions& options) {
  if (!supports_multi_hop(kind)) {
    throw std::invalid_argument(
        "run_session_farm: unsupported multi-hop protocol");
  }
  // A chain session IS a fan-out-1 tree session: one session class, one
  // wiring path (TreeSession's Topology == Chain's, bit for bit).
  return run_farm<TreeSession>(kind, analytic::TreeParams::chain(params),
                               options);
}

SessionFarmResult run_session_farm(ProtocolKind kind,
                                   const analytic::TreeParams& params,
                                   const SessionFarmOptions& options) {
  if (!supports_multi_hop(kind)) {
    throw std::invalid_argument(
        "run_session_farm: unsupported multi-hop protocol");
  }
  return run_farm<TreeSession>(kind, params, options);
}

}  // namespace sigcomp::exp
