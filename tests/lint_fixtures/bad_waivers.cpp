// Fixture: malformed and stale waivers are findings themselves.
#include <cstdlib>

void broken_waivers() {
  // sigcomp-lint: allow(no-such-rule) rule name does not exist  LINT[bad-waiver]
  int a = 0;
  // sigcomp-lint: allow(libc-rand)  LINT[bad-waiver]
  int b = rand();  // LINT[libc-rand]
  // sigcomp-lint: allow(wall-clock) nothing on the next line reads a clock  LINT[unused-waiver]
  int c = 0;
  // sigcomp-lint: there is no verb here  LINT[bad-waiver]
  (void)a;
  (void)b;
  (void)c;
}
