#include "protocols/multi_hop_run.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng_streams.hpp"
#include "protocols/chain.hpp"
#include "sim/channel.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace sigcomp::protocols {

namespace {

class MultiHopRun {
 public:
  MultiHopRun(ProtocolKind kind, analytic::HeteroMultiHopParams params,
              const MultiHopSimOptions& options)
      : params_(std::move(params)),
        options_(options),
        mech_(mechanisms(kind)),
        sim_(options.event_queue),
        rng_channel_(options.seed, rng::kTreeChannel),
        rng_nodes_(options.seed, rng::kTreeNodes),
        rng_lifecycle_(options.seed, rng::kTreeLifecycle),
        rng_failure_(options.seed, rng::kTreeFailure) {
    params_.validate();
    if (!supports_multi_hop(kind)) {
      throw std::invalid_argument("run_multi_hop: unsupported protocol " +
                                  std::string(to_string(kind)));
    }
    const std::size_t k = params_.hops();
    TimerSettings timers;
    timers.dist = options.timer_dist;
    timers.refresh = params_.refresh_timer;
    timers.timeout = params_.timeout_timer;
    timers.retrans = params_.retrans_timer;

    // Hop i's forward and reverse directions share the link's loss/delay.
    std::vector<sim::LossConfig> hop_loss;
    std::vector<sim::DelayConfig> hop_delay;
    hop_loss.reserve(k);
    hop_delay.reserve(k);
    for (std::size_t i = 0; i < k; ++i) {
      hop_loss.push_back(params_.hop_loss_config(i));
      hop_delay.push_back(sim::DelayConfig{options.delay_model,
                                           params_.delay[i],
                                           options.delay_shape});
    }
    chain_ = std::make_unique<Chain>(sim_, rng_channel_, rng_nodes_, mech_,
                                     timers, hop_loss, hop_delay,
                                     [this] { on_change(); }, options_.trace);

    inconsistent_hops_.assign(k, sim::TimeWeightedValue{});
  }

  MultiHopSimResult run() {
    chain_->sender().start(++version_);
    schedule_update();
    if (mech_.external_failure_detector && params_.false_signal_rate > 0.0) {
      for (std::size_t i = 0; i < params_.hops(); ++i) schedule_false_signal(i);
    }
    sim_.run_until(options_.duration);

    MultiHopSimResult out;
    out.duration = options_.duration;
    out.messages = chain_->messages_sent();
    out.relay_timeouts = chain_->relay_timeouts();
    for (std::size_t i = 0; i < params_.hops(); ++i) {
      out.hop_inconsistency.push_back(
          inconsistent_hops_[i].mean(options_.duration));
    }
    out.metrics.inconsistency = any_inconsistent_.mean(options_.duration);
    out.metrics.raw_message_rate =
        static_cast<double>(out.messages) / options_.duration;
    out.metrics.message_rate = out.metrics.raw_message_rate;
    return out;
  }

 private:
  void schedule_update() {
    if (params_.update_rate <= 0.0) return;
    sim_.schedule_in(rng_lifecycle_.exponential(1.0 / params_.update_rate),
                     [this] {
                       chain_->sender().update(++version_);
                       schedule_update();
                     });
  }

  void schedule_false_signal(std::size_t relay) {
    sim_.schedule_in(
        rng_failure_.exponential(1.0 / params_.false_signal_rate),
        [this, relay] {
          chain_->relay(relay).external_removal_signal();
          schedule_false_signal(relay);
        });
  }

  void on_change() {
    bool all_ok = true;
    for (std::size_t i = 0; i < chain_->hops(); ++i) {
      const bool ok = chain_->relay(i).value() == chain_->sender().value();
      inconsistent_hops_[i].set(sim_.now(), ok ? 0.0 : 1.0);
      all_ok = all_ok && ok;
    }
    any_inconsistent_.set(sim_.now(), all_ok ? 0.0 : 1.0);
  }

  analytic::HeteroMultiHopParams params_;
  MultiHopSimOptions options_;
  MechanismSet mech_;

  sim::Simulator sim_;
  sim::Rng rng_channel_;
  sim::Rng rng_nodes_;
  sim::Rng rng_lifecycle_;
  sim::Rng rng_failure_;
  std::unique_ptr<Chain> chain_;

  std::vector<sim::TimeWeightedValue> inconsistent_hops_;
  sim::TimeWeightedValue any_inconsistent_;
  std::int64_t version_ = 0;
};

}  // namespace

MultiHopSimResult run_multi_hop(ProtocolKind kind, const MultiHopParams& params,
                                const MultiHopSimOptions& options) {
  params.validate();
  return run_multi_hop(kind,
                       analytic::HeteroMultiHopParams::from_homogeneous(params),
                       options);
}

MultiHopSimResult run_multi_hop(ProtocolKind kind,
                                const analytic::HeteroMultiHopParams& params,
                                const MultiHopSimOptions& options) {
  if (options.duration <= 0.0) {
    throw std::invalid_argument("run_multi_hop: duration must be > 0");
  }
  MultiHopRun run(kind, params, options);
  return run.run();
}

MultiHopReplicatedResult run_multi_hop_replicated(
    ProtocolKind kind, const MultiHopParams& params,
    const MultiHopSimOptions& options, std::size_t replications) {
  if (replications == 0) {
    throw std::invalid_argument("run_multi_hop_replicated: need >= 1 replication");
  }
  sim::RunningStats inconsistency;
  sim::RunningStats message_rate;
  sim::RunningStats last_hop;
  for (std::size_t r = 0; r < replications; ++r) {
    MultiHopSimOptions rep = options;
    rep.seed = options.seed + r;
    const MultiHopSimResult result = run_multi_hop(kind, params, rep);
    inconsistency.add(result.metrics.inconsistency);
    message_rate.add(result.metrics.raw_message_rate);
    last_hop.add(result.hop_inconsistency.back());
  }
  MultiHopReplicatedResult out;
  out.inconsistency = sim::confidence_interval_95(inconsistency);
  out.message_rate = sim::confidence_interval_95(message_rate);
  out.last_hop_inconsistency = sim::confidence_interval_95(last_hop);
  out.replications = replications;
  return out;
}

}  // namespace sigcomp::protocols
