// Unit tests of the single-hop protocol engines, driven over scripted
// channels (loss toggled between 0 and 1 for fault injection).
#include "protocols/engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.hpp"

namespace sigcomp::protocols {
namespace {

/// Sender + receiver wired over two channels with controllable loss.
class EnginePair {
 public:
  explicit EnginePair(ProtocolKind kind,
                      TimerSettings timers = {sim::Distribution::kDeterministic,
                                              5.0, 15.0, 0.5})
      : rng_(123),
        forward_(sim_, rng_, 0.0, 0.1, sim::Distribution::kDeterministic,
                 [this](const Message& m) { receiver_->handle(m); }),
        reverse_(sim_, rng_, 0.0, 0.1, sim::Distribution::kDeterministic,
                 [this](const Message& m) { sender_->handle(m); }) {
    sender_ = std::make_unique<SenderEngine>(sim_, rng_, mechanisms(kind), timers,
                                             forward_, nullptr);
    receiver_ = std::make_unique<ReceiverEngine>(sim_, rng_, mechanisms(kind),
                                                 timers, reverse_, nullptr);
  }

  sim::Simulator sim_;
  sim::Rng rng_;
  MessageChannel forward_;
  MessageChannel reverse_;
  std::unique_ptr<SenderEngine> sender_;
  std::unique_ptr<ReceiverEngine> receiver_;
};

TEST(Engine, InstallPropagatesValue) {
  EnginePair pair(ProtocolKind::kSS);
  pair.sender_->install(7);
  pair.sim_.run_until(0.2);
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{7});
  EXPECT_EQ(pair.sender_->value(), std::optional<std::int64_t>{7});
}

TEST(Engine, UpdateReplacesValue) {
  EnginePair pair(ProtocolKind::kSS);
  pair.sender_->install(1);
  pair.sim_.run_until(0.2);
  pair.sender_->update(2);
  pair.sim_.run_until(0.4);
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{2});
}

TEST(Engine, RefreshKeepsSoftStateAlive) {
  EnginePair pair(ProtocolKind::kSS);  // R=5, T=15
  pair.sender_->install(1);
  pair.sim_.run_until(100.0);  // many timeout intervals
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{1});
  EXPECT_EQ(pair.receiver_->timeouts(), 0u);
  // Refreshes flowed roughly every 5 s.
  EXPECT_GE(pair.forward_.counters().sent, 20u);
}

TEST(Engine, SoftStateTimesOutWhenRefreshesStop) {
  EnginePair pair(ProtocolKind::kSS);
  pair.sender_->install(1);
  pair.sim_.run_until(0.2);
  // Blackhole the channel: receiver must drop state after T = 15 s.
  pair.forward_.set_loss(1.0);
  pair.sim_.run_until(20.0);
  EXPECT_EQ(pair.receiver_->value(), std::nullopt);
  EXPECT_EQ(pair.receiver_->timeouts(), 1u);
}

TEST(Engine, PureSoftStateRemovalWaitsForTimeout) {
  EnginePair pair(ProtocolKind::kSS);
  pair.sender_->install(1);
  pair.sim_.run_until(0.2);
  pair.sender_->remove();
  // No explicit removal: state lingers until timeout (armed at the last
  // refresh/trigger receipt).
  pair.sim_.run_until(1.0);
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{1});
  pair.sim_.run_until(20.0);
  EXPECT_EQ(pair.receiver_->value(), std::nullopt);
}

TEST(Engine, ExplicitRemovalIsFast) {
  EnginePair pair(ProtocolKind::kSSER);
  pair.sender_->install(1);
  pair.sim_.run_until(0.2);
  pair.sender_->remove();
  pair.sim_.run_until(0.4);  // one channel delay later
  EXPECT_EQ(pair.receiver_->value(), std::nullopt);
}

TEST(Engine, SsNeverSendsAcks) {
  EnginePair pair(ProtocolKind::kSS);
  pair.sender_->install(1);
  pair.sim_.run_until(50.0);
  EXPECT_EQ(pair.reverse_.counters().sent, 0u);
}

TEST(Engine, ReliableTriggerIsAcked) {
  EnginePair pair(ProtocolKind::kSSRT);
  pair.sender_->install(1);
  pair.sim_.run_until(0.5);
  EXPECT_EQ(pair.reverse_.counters().sent, 1u);  // the ACK
  // No retransmission needed: exactly one trigger went forward.
  EXPECT_EQ(pair.forward_.counters().sent, 1u);
}

TEST(Engine, LostTriggerIsRetransmitted) {
  EnginePair pair(ProtocolKind::kSSRT);
  pair.forward_.set_loss(1.0);
  pair.sender_->install(1);
  pair.sim_.run_until(1.6);  // a few retransmission timers (Gamma = 0.5)
  EXPECT_GE(pair.forward_.counters().sent, 3u);
  EXPECT_EQ(pair.receiver_->value(), std::nullopt);
  // Heal the channel: the next retransmission installs the state.
  pair.forward_.set_loss(0.0);
  pair.sim_.run_until(3.0);
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{1});
}

TEST(Engine, AckStopsRetransmissions) {
  EnginePair pair(ProtocolKind::kSSRT);
  pair.sender_->install(1);
  pair.sim_.run_until(10.0);
  // Only the initial trigger plus refreshes at R=5 (t=5 and t=10 edges);
  // no retransmission storm.
  EXPECT_LE(pair.forward_.counters().sent, 4u);
}

TEST(Engine, TimeoutNotificationTriggersReinstall) {
  EnginePair pair(ProtocolKind::kSSRT);
  pair.sender_->install(1);
  pair.sim_.run_until(0.2);
  // Lose everything long enough for the receiver to time out (T = 15), then
  // heal; the NOTICE prompts the sender to re-trigger immediately.
  pair.forward_.set_loss(1.0);
  pair.sim_.run_until(16.0);
  ASSERT_EQ(pair.receiver_->value(), std::nullopt);
  pair.forward_.set_loss(0.0);
  pair.sim_.run_until(17.0);
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{1});
}

TEST(Engine, ReliableRemovalSurvivesLoss) {
  EnginePair pair(ProtocolKind::kSSRTR);
  pair.sender_->install(1);
  pair.sim_.run_until(0.2);
  pair.forward_.set_loss(1.0);
  pair.sender_->remove();
  EXPECT_TRUE(pair.sender_->removal_pending());
  pair.sim_.run_until(1.0);
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{1});  // still
  pair.forward_.set_loss(0.0);
  pair.sim_.run_until(2.0);
  EXPECT_EQ(pair.receiver_->value(), std::nullopt);
  pair.sim_.run_until(3.0);
  EXPECT_FALSE(pair.sender_->removal_pending());  // ACK arrived
}

TEST(Engine, HardStateHasNoRefreshTraffic) {
  EnginePair pair(ProtocolKind::kHS);
  pair.sender_->install(1);
  pair.sim_.run_until(200.0);
  // Exactly one trigger (plus nothing else) forward; one ACK back.
  EXPECT_EQ(pair.forward_.counters().sent, 1u);
  EXPECT_EQ(pair.reverse_.counters().sent, 1u);
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{1});
}

TEST(Engine, HardStateNeverTimesOut) {
  EnginePair pair(ProtocolKind::kHS);
  pair.sender_->install(1);
  pair.sim_.run_until(0.5);
  pair.forward_.set_loss(1.0);  // no traffic at all from now on
  pair.sim_.run_until(10000.0);
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{1});
  EXPECT_EQ(pair.receiver_->timeouts(), 0u);
}

TEST(Engine, ExternalSignalRemovesStateAndNotifies) {
  EnginePair pair(ProtocolKind::kHS);
  pair.sender_->install(1);
  pair.sim_.run_until(0.5);
  pair.receiver_->external_removal_signal();
  EXPECT_EQ(pair.receiver_->value(), std::nullopt);
  // The notice reaches the live sender, which re-installs.
  pair.sim_.run_until(1.0);
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{1});
}

TEST(Engine, ExternalSignalWithoutStateIsNoOp) {
  EnginePair pair(ProtocolKind::kHS);
  pair.receiver_->external_removal_signal();
  pair.sim_.run_until(1.0);
  EXPECT_EQ(pair.reverse_.counters().sent, 0u);
}

TEST(Engine, StaleEpochMessagesAreIgnored) {
  EnginePair pair(ProtocolKind::kSS);
  pair.sender_->begin_epoch(1);
  pair.receiver_->begin_epoch(2);  // mismatched on purpose
  pair.sender_->install(9);
  pair.sim_.run_until(1.0);
  EXPECT_EQ(pair.receiver_->value(), std::nullopt);
}

TEST(Engine, BeginEpochResetsState) {
  EnginePair pair(ProtocolKind::kSS);
  pair.sender_->install(1);
  pair.sim_.run_until(0.2);
  pair.sender_->begin_epoch(5);
  pair.receiver_->begin_epoch(5);
  EXPECT_EQ(pair.sender_->value(), std::nullopt);
  EXPECT_EQ(pair.receiver_->value(), std::nullopt);
  EXPECT_EQ(pair.sender_->epoch(), 5u);
  EXPECT_EQ(pair.receiver_->epoch(), 5u);
}

TEST(Engine, RemoveCancelsRefreshes) {
  EnginePair pair(ProtocolKind::kSS);
  pair.sender_->install(1);
  pair.sim_.run_until(0.2);
  const auto sent_before = pair.forward_.counters().sent;
  pair.sender_->remove();
  pair.sim_.run_until(100.0);
  EXPECT_EQ(pair.forward_.counters().sent, sent_before);  // silence after remove
}

TEST(Engine, UpdateSupersedesPendingTrigger) {
  EnginePair pair(ProtocolKind::kSSRT);
  pair.forward_.set_loss(1.0);
  pair.sender_->install(1);
  pair.sender_->update(2);
  pair.forward_.set_loss(0.0);
  pair.sim_.run_until(2.0);
  // Receiver must end with the latest value, never regressing to 1.
  EXPECT_EQ(pair.receiver_->value(), std::optional<std::int64_t>{2});
}

}  // namespace
}  // namespace sigcomp::protocols
