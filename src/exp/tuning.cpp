#include "exp/tuning.hpp"

#include <cmath>
#include <stdexcept>

#include "analytic/multi_hop.hpp"
#include "analytic/single_hop.hpp"
#include "exp/sweep.hpp"

namespace sigcomp::exp {

double minimize_log_grid(const std::function<double(double)>& cost, double lo,
                         double hi, std::size_t grid_points, double tolerance) {
  if (!(lo > 0.0) || !(hi > lo)) {
    throw std::invalid_argument("minimize_log_grid: require 0 < lo < hi");
  }
  if (grid_points < 4) {
    throw std::invalid_argument("minimize_log_grid: need at least 4 grid points");
  }

  // Coarse scan.
  const std::vector<double> grid = log_space(lo, hi, grid_points);
  std::size_t best = 0;
  double best_cost = cost(grid[0]);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    const double c = cost(grid[i]);
    if (c < best_cost) {
      best_cost = c;
      best = i;
    }
  }

  // Golden-section refinement in the bracket around the best grid cell
  // (log domain, so the bracket is symmetric in ratio).
  double a = std::log(grid[best == 0 ? 0 : best - 1]);
  double b = std::log(grid[best + 1 >= grid.size() ? grid.size() - 1 : best + 1]);
  if (a == b) return std::exp(a);
  constexpr double kInvPhi = 0.6180339887498949;
  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = cost(std::exp(x1));
  double f2 = cost(std::exp(x2));
  while (b - a > tolerance) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = cost(std::exp(x1));
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = cost(std::exp(x2));
    }
  }
  return std::exp(0.5 * (a + b));
}

TuningResult optimal_refresh_timer(ProtocolKind kind,
                                   const SingleHopParams& params, double weight,
                                   double lo, double hi) {
  if (!mechanisms(kind).refresh) {
    throw std::invalid_argument(
        "optimal_refresh_timer: protocol has no refresh timer");
  }
  const auto cost = [&](double refresh) {
    return integrated_cost(
        analytic::evaluate_single_hop(kind, params.with_refresh_scaled_timeout(refresh)),
        weight);
  };
  TuningResult out;
  out.argmin = minimize_log_grid(cost, lo, hi);
  out.metrics =
      analytic::evaluate_single_hop(kind, params.with_refresh_scaled_timeout(out.argmin));
  out.cost = integrated_cost(out.metrics, weight);
  return out;
}

TuningResult optimal_timeout_timer(ProtocolKind kind,
                                   const SingleHopParams& params, double weight,
                                   double lo, double hi) {
  if (!mechanisms(kind).soft_timeout) {
    throw std::invalid_argument(
        "optimal_timeout_timer: protocol has no state-timeout timer");
  }
  const auto cost = [&](double timeout) {
    SingleHopParams p = params;
    p.timeout_timer = timeout;
    return integrated_cost(analytic::evaluate_single_hop(kind, p), weight);
  };
  TuningResult out;
  out.argmin = minimize_log_grid(cost, lo, hi);
  SingleHopParams p = params;
  p.timeout_timer = out.argmin;
  out.metrics = analytic::evaluate_single_hop(kind, p);
  out.cost = integrated_cost(out.metrics, weight);
  return out;
}

TuningResult optimal_multi_hop_refresh_timer(ProtocolKind kind,
                                             const MultiHopParams& params,
                                             double weight, double lo,
                                             double hi) {
  if (!mechanisms(kind).refresh) {
    throw std::invalid_argument(
        "optimal_multi_hop_refresh_timer: protocol has no refresh timer");
  }
  const auto with_refresh = [&](double refresh) {
    MultiHopParams p = params;
    p.refresh_timer = refresh;
    p.timeout_timer = 3.0 * refresh;
    return p;
  };
  const auto cost = [&](double refresh) {
    return integrated_cost(
        analytic::evaluate_multi_hop(kind, with_refresh(refresh)), weight);
  };
  TuningResult out;
  out.argmin = minimize_log_grid(cost, lo, hi);
  out.metrics = analytic::evaluate_multi_hop(kind, with_refresh(out.argmin));
  out.cost = integrated_cost(out.metrics, weight);
  return out;
}

}  // namespace sigcomp::exp
