#include "sim/simulator.hpp"

#include <stdexcept>

namespace sigcomp::sim {

namespace {

std::variant<EventQueue, TimingWheelQueue> make_queue(
    EventQueueBackend backend) {
  if (backend == EventQueueBackend::kWheel) {
    return std::variant<EventQueue, TimingWheelQueue>{
        std::in_place_type<TimingWheelQueue>};
  }
  return std::variant<EventQueue, TimingWheelQueue>{
      std::in_place_type<EventQueue>};
}

}  // namespace

const char* to_string(EventQueueBackend backend) noexcept {
  return backend == EventQueueBackend::kWheel ? "wheel" : "heap";
}

std::optional<EventQueueBackend> parse_event_queue_backend(
    std::string_view name) noexcept {
  if (name == "heap") return EventQueueBackend::kHeap;
  if (name == "wheel") return EventQueueBackend::kWheel;
  return std::nullopt;
}

Simulator::Simulator(EventQueueBackend backend) : queue_(make_queue(backend)) {}

EventId Simulator::schedule_at(Time t, EventCallback action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  return std::visit(
      [&](auto& queue) { return queue.push(t, std::move(action)); }, queue_);
}

EventId Simulator::schedule_in(Time delay, EventCallback action) {
  if (delay < 0.0) delay = 0.0;
  const Time t = now_ + delay;
  return std::visit(
      [&](auto& queue) { return queue.push(t, std::move(action)); }, queue_);
}

bool Simulator::step() {
  // The callback may re-enter the simulator (scheduling is the common
  // case), but it never changes the variant's alternative, so running it
  // inside the visit is safe.
  return std::visit(
      [this](auto& queue) {
        if (queue.empty()) return false;
        auto event = queue.pop();
        now_ = event.time;
        ++executed_;
        event.action();
        return true;
      },
      queue_);
}

void Simulator::run_until(Time t) {
  while (true) {
    const bool ran = std::visit(
        [&](auto& queue) {
          if (queue.empty() || queue.next_time() > t) return false;
          auto event = queue.pop();
          now_ = event.time;
          ++executed_;
          event.action();
          return true;
        },
        queue_);
    if (!ran) break;
  }
  if (t > now_) now_ = t;
}

void Simulator::run(std::uint64_t max_events) {
  while (executed_ < max_events && step()) {
  }
}

}  // namespace sigcomp::sim
