#include "sim/trace.hpp"

#include <ostream>
#include <stdexcept>

namespace sigcomp::sim {

std::string_view to_string(TraceCategory category) noexcept {
  switch (category) {
    case TraceCategory::kSend: return "send";
    case TraceCategory::kDeliver: return "deliver";
    case TraceCategory::kDrop: return "drop";
    case TraceCategory::kTimer: return "timer";
    case TraceCategory::kState: return "state";
    case TraceCategory::kSession: return "session";
  }
  return "?";
}

TraceLog::TraceLog(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("TraceLog: capacity must be > 0");
  }
}

void TraceLog::record(Time time, TraceCategory category, std::string detail) {
  if (records_.size() == capacity_) records_.pop_front();
  records_.push_back(TraceRecord{time, category, std::move(detail)});
  ++total_;
}

std::vector<TraceRecord> TraceLog::filter(TraceCategory category) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.category == category) out.push_back(r);
  }
  return out;
}

std::size_t TraceLog::count(TraceCategory category) const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_) n += (r.category == category);
  return n;
}

void TraceLog::clear() { records_.clear(); }

void TraceLog::dump(std::ostream& os) const {
  for (const TraceRecord& r : records_) {
    os << r.time << ' ' << to_string(r.category) << ' ' << r.detail << '\n';
  }
}

}  // namespace sigcomp::sim
