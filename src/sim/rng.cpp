#include "sim/rng.hpp"

#include <cmath>
#include <numbers>

namespace sigcomp::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix seed and stream so that nearby values yield unrelated states.
  std::uint64_t x = seed ^ (0xD2B74407B1CE6E93ULL * (stream + 1));
  for (auto& s : state_) s = splitmix64(x);
  // Avoid the all-zero state (cannot occur after splitmix, but be explicit).
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  const double v = lo + (hi - lo) * uniform();
  // lo + (hi - lo) * u can round up to exactly hi (e.g. when hi - lo spans
  // few representable values); clamp to keep the documented [lo, hi).
  if (v >= hi) return std::nextafter(hi, lo);
  return v;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t v = next_u64();
    if (v >= threshold) return v % n;
  }
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
  if (mean <= 0.0) return 0.0;
  // -mean * log(1 - U); 1 - U in (0, 1].
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 == 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::pareto(double shape, double scale) noexcept {
  if (shape <= 0.0 || scale <= 0.0) return 0.0;
  double u = 0.0;
  do {
    u = uniform();
  } while (u == 0.0);
  return scale * std::pow(u, -1.0 / shape);
}

double Rng::pareto_with_mean(double shape, double mean) noexcept {
  if (shape <= 1.0 || mean <= 0.0) return 0.0;
  const double scale = mean * (shape - 1.0) / shape;
  return pareto(shape, scale);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * normal());
}

double Rng::lognormal_with_mean(double mean, double sigma) noexcept {
  if (mean <= 0.0) return 0.0;
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  return lognormal(mu, sigma);
}

double sample(Rng& rng, Distribution dist, double mean) noexcept {
  switch (dist) {
    case Distribution::kDeterministic: return mean < 0.0 ? 0.0 : mean;
    case Distribution::kExponential: return rng.exponential(mean);
  }
  return mean;
}

}  // namespace sigcomp::sim
