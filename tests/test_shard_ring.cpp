// Tests of the cross-shard message ring (exp/shard_ring): SPSC stress under
// real concurrency, wrap-around, the ramp-up-only growth contract, and the
// adversarial-tie determinism of the fabric delivery order.
#include "exp/shard_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

namespace sigcomp::exp {
namespace {

CrossShardEntry entry(double time, std::uint64_t source, std::uint64_t seq,
                      std::uint64_t dest = 0) {
  CrossShardEntry e;
  e.send_time = time;
  e.source = source;
  e.seq = seq;
  e.dest = dest;
  e.message = protocols::Message{protocols::MessageType::kRefresh,
                                 static_cast<std::int64_t>(seq), seq, 0};
  return e;
}

TEST(RingSpsc, StressMillionPushPopFlatAllocations) {
  // One real producer thread against one real consumer thread, 1M entries
  // through a fixed-capacity ring: every entry arrives exactly once, in
  // FIFO order, and the ring never allocates after construction (try_push
  // spins instead of growing).  The CI TSan leg runs this suite.
  constexpr std::uint64_t kEntries = 1'000'000;
  ShardRing ring(1024);
  EXPECT_EQ(ring.allocations(), 1u);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kEntries; ++i) {
      while (!ring.try_push(entry(1.0, 7, i))) {
      }
    }
  });
  std::uint64_t received = 0;
  CrossShardEntry out;
  while (received < kEntries) {
    if (ring.try_pop(out)) {
      ASSERT_EQ(out.seq, received);  // FIFO, nothing lost or duplicated
      ++received;
    }
  }
  producer.join();

  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pushed(), kEntries);
  EXPECT_EQ(ring.allocations(), 1u);  // flat: zero steady-state allocations
  EXPECT_EQ(ring.capacity(), 1024u);
}

TEST(RingSpsc, WrapAroundPreservesFifoOrder) {
  // Capacity 8 ring cycled far past its capacity: the masked monotone
  // cursors must keep FIFO order across every wrap.
  ShardRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  std::uint64_t next_pop = 0;
  CrossShardEntry out;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(entry(2.0, 1, i)));
    if (ring.size() <= 5) continue;  // hold occupancy near (not at) capacity
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out.seq, next_pop++);
  }
  while (ring.try_pop(out)) {
    EXPECT_EQ(out.seq, next_pop++);
  }
  EXPECT_EQ(next_pop, 1000u);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.allocations(), 1u);
}

TEST(RingSpsc, TryPushRefusesWhenFullAndNeverGrows) {
  ShardRing ring(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_push(entry(0.0, 0, i)));
  }
  EXPECT_FALSE(ring.try_push(entry(0.0, 0, 8)));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.allocations(), 1u);
}

TEST(RingSpsc, GrowthBeforeFirstSliceRelocatesAndThenStaysFlat) {
  // The farm's ramp-up shape: push() grows the buffer while the consumer is
  // quiescent (capacity doubling, live entries relayed in order), and once
  // warm the ring never allocates again -- even when later traffic exceeds
  // the ORIGINAL capacity.
  ShardRing ring(8);
  for (std::uint64_t i = 0; i < 100; ++i) {
    ring.push(entry(3.0, 5, i));
  }
  EXPECT_EQ(ring.capacity(), 128u);
  EXPECT_EQ(ring.allocations(), 5u);  // 8 -> 16 -> 32 -> 64 -> 128

  std::vector<CrossShardEntry> drained;
  EXPECT_EQ(ring.drain(drained), 100u);
  ASSERT_EQ(drained.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(drained[i].seq, i);  // relocation preserved FIFO order
  }

  // Warm now: the same volume again must not allocate.
  for (std::uint64_t i = 0; i < 100; ++i) {
    ring.push(entry(4.0, 5, 100 + i));
  }
  EXPECT_EQ(ring.allocations(), 5u);
  EXPECT_EQ(ring.pushed(), 200u);
}

TEST(RingSpsc, DrainTakesSnapshotAndAppends) {
  ShardRing ring(16);
  for (std::uint64_t i = 0; i < 5; ++i) ring.push(entry(1.0, 2, i));
  std::vector<CrossShardEntry> out;
  out.push_back(entry(0.5, 1, 99));  // pre-existing content is appended to
  EXPECT_EQ(ring.drain(out), 5u);
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out[0].seq, 99u);
  EXPECT_EQ(out[5].seq, 4u);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.drain(out), 0u);
}

TEST(RingMergeOrder, FabricBeforeIsAStrictTotalOrderOnStamps) {
  const CrossShardEntry a = entry(1.0, 3, 0);
  const CrossShardEntry b = entry(1.0, 3, 1);  // same time, same source
  const CrossShardEntry c = entry(1.0, 4, 0);  // same time, later source
  const CrossShardEntry d = entry(2.0, 0, 0);  // later time, earliest ids
  EXPECT_TRUE(fabric_before(a, b));
  EXPECT_FALSE(fabric_before(b, a));
  EXPECT_TRUE(fabric_before(b, c));  // source outranks seq
  EXPECT_TRUE(fabric_before(c, d));  // time outranks everything
  EXPECT_FALSE(fabric_before(a, a));  // irreflexive
}

TEST(RingMergeOrder, SortIsInvariantUnderAdversarialTiesAndShuffles) {
  // Many entries sharing one send time (the refresh-storm worst case, plus
  // a few distinct times), shuffled differently per trial: sort_fabric must
  // recover the identical sequence every time -- the property that makes
  // destination delivery order independent of ring arrival order.
  std::vector<CrossShardEntry> canonical;
  for (std::uint64_t src = 0; src < 7; ++src) {
    for (std::uint64_t seq = 0; seq < 5; ++seq) {
      canonical.push_back(entry(10.0, src, seq));          // one big tie
      canonical.push_back(entry(10.0 + 0.5 * static_cast<double>(seq % 2),
                                100 + src, seq));
    }
  }
  sort_fabric(canonical);
  std::mt19937 shuffler(1234);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<CrossShardEntry> shuffled = canonical;
    std::shuffle(shuffled.begin(), shuffled.end(), shuffler);
    sort_fabric(shuffled);
    for (std::size_t i = 0; i < canonical.size(); ++i) {
      EXPECT_EQ(shuffled[i].send_time, canonical[i].send_time);
      EXPECT_EQ(shuffled[i].source, canonical[i].source);
      EXPECT_EQ(shuffled[i].seq, canonical[i].seq);
    }
  }
}

TEST(RingFabric, MaterializesOneRingPerDirectedPair) {
  CrossShardFabric fabric(4);
  ShardRing* r01 = fabric.ensure_ring(0, 1);
  ShardRing* r21 = fabric.ensure_ring(2, 1);
  ShardRing* r10 = fabric.ensure_ring(1, 0);
  EXPECT_EQ(fabric.ensure_ring(0, 1), r01);  // idempotent
  EXPECT_EQ(fabric.rings(), 3u);
  EXPECT_EQ(fabric.find_ring(0, 1), r01);
  EXPECT_EQ(fabric.find_ring(2, 1), r21);
  EXPECT_EQ(fabric.find_ring(1, 0), r10);
  EXPECT_EQ(fabric.find_ring(3, 1), nullptr);
  EXPECT_EQ(fabric.find_ring(0, 2), nullptr);
}

TEST(RingFabric, DrainIntoMergesEveryIncomingRing) {
  CrossShardFabric fabric(3);
  fabric.ensure_ring(0, 2)->push(entry(5.0, 10, 0, 42));
  fabric.ensure_ring(1, 2)->push(entry(4.0, 20, 0, 43));
  fabric.ensure_ring(0, 2)->push(entry(5.0, 10, 1, 42));
  EXPECT_FALSE(fabric.empty());
  EXPECT_EQ(fabric.total_pushed(), 3u);

  std::vector<CrossShardEntry> merged;
  EXPECT_EQ(fabric.drain_into(2, merged), 3u);
  sort_fabric(merged);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].source, 20u);  // earliest send time first
  EXPECT_EQ(merged[1].source, 10u);
  EXPECT_EQ(merged[1].seq, 0u);
  EXPECT_EQ(merged[2].seq, 1u);
  EXPECT_TRUE(fabric.empty());
  EXPECT_EQ(fabric.total_pushed(), 3u);  // pushed() survives the drain
}

}  // namespace
}  // namespace sigcomp::exp
