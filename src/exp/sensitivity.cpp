#include "exp/sensitivity.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "analytic/single_hop.hpp"

namespace sigcomp::exp {

namespace {

using Setter = std::function<void(SingleHopParams&, double)>;
using Getter = std::function<double(const SingleHopParams&)>;

struct ParamAccess {
  const char* name;
  Getter get;
  Setter set;
};

const std::vector<ParamAccess>& accessors() {
  static const std::vector<ParamAccess> kAccessors = {
      {"loss", [](const SingleHopParams& p) { return p.loss; },
       [](SingleHopParams& p, double v) { p.loss = v; }},
      {"delay", [](const SingleHopParams& p) { return p.delay; },
       [](SingleHopParams& p, double v) { p.delay = v; }},
      {"update_rate", [](const SingleHopParams& p) { return p.update_rate; },
       [](SingleHopParams& p, double v) { p.update_rate = v; }},
      {"removal_rate", [](const SingleHopParams& p) { return p.removal_rate; },
       [](SingleHopParams& p, double v) { p.removal_rate = v; }},
      {"refresh_timer", [](const SingleHopParams& p) { return p.refresh_timer; },
       [](SingleHopParams& p, double v) { p.refresh_timer = v; }},
      {"timeout_timer", [](const SingleHopParams& p) { return p.timeout_timer; },
       [](SingleHopParams& p, double v) { p.timeout_timer = v; }},
      {"retrans_timer", [](const SingleHopParams& p) { return p.retrans_timer; },
       [](SingleHopParams& p, double v) { p.retrans_timer = v; }},
      {"false_signal_rate",
       [](const SingleHopParams& p) { return p.false_signal_rate; },
       [](SingleHopParams& p, double v) { p.false_signal_rate = v; }},
  };
  return kAccessors;
}

}  // namespace

std::vector<std::string> sensitivity_parameters() {
  std::vector<std::string> out;
  for (const ParamAccess& a : accessors()) out.emplace_back(a.name);
  return out;
}

std::vector<Sensitivity> sensitivity_analysis(ProtocolKind kind,
                                              const SingleHopParams& params,
                                              double step) {
  params.validate();
  if (!(step > 0.0) || step >= 0.5) {
    throw std::invalid_argument("sensitivity_analysis: step must be in (0, 0.5)");
  }

  std::vector<Sensitivity> out;
  for (const ParamAccess& access : accessors()) {
    Sensitivity s;
    s.parameter = access.name;
    const double base = access.get(params);
    if (base == 0.0) {
      // A parameter at zero has no multiplicative neighbourhood.
      out.push_back(s);
      continue;
    }
    SingleHopParams up = params;
    access.set(up, base * (1.0 + step));
    SingleHopParams down = params;
    access.set(down, base * (1.0 - step));
    const Metrics m_up = analytic::evaluate_single_hop(kind, up);
    const Metrics m_down = analytic::evaluate_single_hop(kind, down);
    const double dlog = std::log1p(step) - std::log1p(-step);
    const auto elasticity = [&](double hi, double lo) {
      if (hi <= 0.0 || lo <= 0.0) return 0.0;
      return (std::log(hi) - std::log(lo)) / dlog;
    };
    s.inconsistency = elasticity(m_up.inconsistency, m_down.inconsistency);
    s.message_rate = elasticity(m_up.message_rate, m_down.message_rate);
    // Quantize numerical dust to a clean zero for unused parameters.
    if (std::abs(s.inconsistency) < 1e-9) s.inconsistency = 0.0;
    if (std::abs(s.message_rate) < 1e-9) s.message_rate = 0.0;
    out.push_back(s);
  }
  return out;
}

Sensitivity most_sensitive(ProtocolKind kind, const SingleHopParams& params) {
  const std::vector<Sensitivity> all = sensitivity_analysis(kind, params);
  const Sensitivity* best = &all.front();
  for (const Sensitivity& s : all) {
    if (std::abs(s.inconsistency) > std::abs(best->inconsistency)) best = &s;
  }
  return *best;
}

}  // namespace sigcomp::exp
