// Batched cross-shard message ring: the deterministic inter-shard fabric of
// the million-session farm.
//
// Topology: one ShardRing per DIRECTED shard pair that ever carries traffic
// (lazily materialized from the static subscription map at farm setup --
// S^2 rings are never allocated).  Each ring is strictly SPSC: the producer
// is the worker advancing the source shard's time slice, the consumer the
// worker draining the destination shard at the epoch boundary.  The farm's
// epoch barriers keep the two phases disjoint in time, but the ring is
// independently correct under true concurrent SPSC use (monotone head/tail
// indices with acquire/release pairing -- the ndn-dpdk ringbuffer shape),
// which is what the RingSpscStress TSan suite exercises.
//
// Allocation discipline: the buffer is a power-of-two array sized at
// construction; steady-state push/pop performs ZERO allocations (tests
// assert allocations() stays flat after warm-up).  push() doubles the
// buffer when full -- legal only while the consumer is quiescent, which in
// the farm means during a worker's own advance phase (the consumer drains
// only at the barrier) -- so capacity growth is a ramp-up-only event,
// mirroring SessionArena's chunk discipline.  try_push() never grows and is
// the primitive concurrent producers must use.
//
// Determinism: entries are stamped (send_time, source session GLOBAL index,
// per-source sequence number).  The stamp is a total order -- seq breaks
// same-time ties from one session, the global index breaks ties across
// sessions -- and every component is invariant to thread count AND shard
// size (a per-ring or per-shard counter would not be: re-sharding reshuffles
// which messages share a ring).  The destination merges all its incoming
// rings and sorts by this stamp, so the delivery order is the same total
// order no matter how sessions were partitioned.  docs/ARCHITECTURE.md,
// "The cross-shard fabric", gives the full argument.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "protocols/message.hpp"
#include "sim/event_queue.hpp"

namespace sigcomp::exp {

/// One message crossing the shard fabric, stamped for deterministic merge.
struct CrossShardEntry {
  sim::Time send_time = 0.0;     ///< simulated time of the push
  std::uint64_t source = 0;      ///< sending session's GLOBAL index
  std::uint64_t seq = 0;         ///< per-source send counter (0, 1, ...)
  std::uint64_t dest = 0;        ///< receiving session's GLOBAL index
  protocols::Message message;    ///< the signaling payload
};

/// The fabric's delivery order: send time, then source global index, then
/// per-source seq.  A strict total order on distinct entries (no session
/// reuses a seq), and every key is shard- and thread-invariant, so sorting a
/// destination's merged drain by this comparator yields the same sequence
/// under any farm decomposition.  Exposed for the adversarial-tie tests.
[[nodiscard]] inline bool fabric_before(const CrossShardEntry& a,
                                        const CrossShardEntry& b) noexcept {
  if (a.send_time != b.send_time) return a.send_time < b.send_time;
  if (a.source != b.source) return a.source < b.source;
  return a.seq < b.seq;
}

/// Sorts a destination shard's merged incoming entries into fabric delivery
/// order (stable sort is unnecessary -- fabric_before is total).
inline void sort_fabric(std::vector<CrossShardEntry>& entries) {
  std::sort(entries.begin(), entries.end(), fabric_before);
}

/// Fixed-capacity SPSC ring of CrossShardEntry.  See the file comment for
/// the producer/consumer and growth contracts.
class ShardRing {
 public:
  /// Rounds `capacity_hint` up to a power of two (minimum 8) and allocates
  /// the buffer once; steady-state traffic never allocates again.
  explicit ShardRing(std::size_t capacity_hint = 64)
      : capacity_(round_up(capacity_hint)), buffer_(capacity_) {}

  ShardRing(const ShardRing&) = delete;             ///< non-copyable
  ShardRing& operator=(const ShardRing&) = delete;  ///< non-copyable

  /// Producer side, non-growing: enqueues `entry` unless the ring is full.
  /// Safe against a concurrent consumer (the SPSC contract).
  bool try_push(const CrossShardEntry& entry) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) >= capacity_) {
      return false;
    }
    buffer_[tail & (capacity_ - 1)] = entry;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, growing: enqueues unconditionally, doubling the buffer
  /// when full.  Growth relocates live entries, so it is legal ONLY while
  /// the consumer is quiescent -- in the farm, inside the producer's own
  /// advance phase, where the epoch barrier guarantees no concurrent drain.
  /// Rings warm up to their traffic high-water mark and then never grow
  /// again (allocations() is the proof the tests pin).
  void push(const CrossShardEntry& entry) {
    if (!try_push(entry)) {
      grow();
      (void)try_push(entry);  // cannot fail: capacity just doubled
    }
  }

  /// Consumer side: dequeues the oldest entry into `out`; false when empty.
  /// Safe against a concurrent producer (the SPSC contract).
  bool try_pop(CrossShardEntry& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return false;
    out = buffer_[head & (capacity_ - 1)];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: drains every entry currently in the ring into `out`
  /// (appended, FIFO).  Returns the number drained.  Entries pushed
  /// concurrently after the initial tail read are left for the next drain.
  std::size_t drain(std::vector<CrossShardEntry>& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    const auto n = static_cast<std::size_t>(tail - head);
    out.reserve(out.size() + n);
    for (; head != tail; ++head) {
      out.push_back(buffer_[head & (capacity_ - 1)]);
    }
    head_.store(head, std::memory_order_release);
    return n;
  }

  /// Entries currently enqueued (racy under concurrent use; exact between
  /// the farm's barrier-separated phases).
  [[nodiscard]] std::size_t size() const noexcept {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  /// True when no entry is enqueued (same precision caveat as size()).
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Current buffer capacity (a power of two).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Buffer allocations since construction (1 = never grew).  Flat in
  /// steady state -- the ring's zero-allocation counter, pinned by tests.
  [[nodiscard]] std::size_t allocations() const noexcept {
    return allocations_;
  }

  /// Entries ever pushed (producer-side counter; the farm's
  /// fabric_messages accounting reads it between phases).
  [[nodiscard]] std::uint64_t pushed() const noexcept {
    return tail_.load(std::memory_order_acquire);
  }

 private:
  static std::size_t round_up(std::size_t n) noexcept {
    std::size_t cap = 8;
    while (cap < n) cap <<= 1;
    return cap;
  }

  /// Doubles the buffer, relaying live entries to their positions under the
  /// new mask.  Indices are monotone and masked, so entry i simply moves
  /// from old[i & old_mask] to new[i & new_mask]; head/tail are unchanged.
  void grow() {
    const std::size_t new_cap = capacity_ * 2;
    std::vector<CrossShardEntry> fresh(new_cap);
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (std::uint64_t i = head; i != tail; ++i) {
      fresh[i & (new_cap - 1)] = buffer_[i & (capacity_ - 1)];
    }
    buffer_ = std::move(fresh);
    capacity_ = new_cap;
    ++allocations_;
  }

  std::size_t capacity_;
  std::vector<CrossShardEntry> buffer_;
  std::atomic<std::uint64_t> head_{0};  ///< consumer cursor (monotone)
  std::atomic<std::uint64_t> tail_{0};  ///< producer cursor (monotone)
  std::size_t allocations_ = 1;         ///< construction counts as one
};

/// The farm's ring registry: at most one ShardRing per directed shard pair,
/// materialized at setup from the static subscription map (sessions name
/// their peers before the first slice, so the set of communicating pairs is
/// known up front -- "lazy" means only pairs that talk get a ring, not that
/// rings appear mid-run).  After setup the structure is immutable; workers
/// only touch ring CONTENTS, each ring by exactly one producer and one
/// consumer.
class CrossShardFabric {
 public:
  explicit CrossShardFabric(std::size_t shards) : incoming_(shards) {}

  CrossShardFabric(const CrossShardFabric&) = delete;
  CrossShardFabric& operator=(const CrossShardFabric&) = delete;

  /// Returns the ring src -> dst, materializing it on first request.
  /// Setup-phase only (single-threaded, before workers start).
  ShardRing* ensure_ring(std::uint32_t src, std::uint32_t dst,
                         std::size_t capacity_hint = 64) {
    std::vector<Route>& routes = incoming_[dst];
    for (const Route& r : routes) {
      if (r.src == src) return r.ring.get();
    }
    routes.push_back(Route{src, std::make_unique<ShardRing>(capacity_hint)});
    ShardRing* ring = routes.back().ring.get();
    // Drain order over incoming rings is by ascending source shard.  The
    // subsequent stamp sort makes delivery order independent of it anyway,
    // but a canonical order keeps counter accumulation reproducible.
    std::sort(routes.begin(), routes.end(),
              [](const Route& a, const Route& b) { return a.src < b.src; });
    return ring;
  }

  /// Producer-side lookup of the ring src -> dst; nullptr when the pair was
  /// never materialized.  Binary search over the destination's sorted route
  /// list -- O(log fan-in) per send, no synchronization (the structure is
  /// immutable after setup).
  [[nodiscard]] ShardRing* find_ring(std::uint32_t src,
                                     std::uint32_t dst) noexcept {
    std::vector<Route>& routes = incoming_[dst];
    const auto it = std::lower_bound(
        routes.begin(), routes.end(), src,
        [](const Route& r, std::uint32_t s) { return r.src < s; });
    if (it == routes.end() || it->src != src) return nullptr;
    return it->ring.get();
  }

  /// Drains every ring into destination `dst` (appended to `out`, then
  /// stamp-sorted by the caller).  Consumer side of each ring; called only
  /// by the worker that owns shard `dst`, only in the drain phase.
  std::size_t drain_into(std::uint32_t dst,
                         std::vector<CrossShardEntry>& out) {
    std::size_t n = 0;
    for (Route& r : incoming_[dst]) n += r.ring->drain(out);
    return n;
  }

  /// True when no ring holds an undelivered entry (barrier-phase exact).
  [[nodiscard]] bool empty() const noexcept {
    for (const std::vector<Route>& routes : incoming_) {
      for (const Route& r : routes) {
        if (!r.ring->empty()) return false;
      }
    }
    return true;
  }

  /// Total entries ever pushed across all rings (the farm's
  /// fabric_messages counter; barrier-phase exact).
  [[nodiscard]] std::uint64_t total_pushed() const noexcept {
    std::uint64_t n = 0;
    for (const std::vector<Route>& routes : incoming_) {
      for (const Route& r : routes) n += r.ring->pushed();
    }
    return n;
  }

  /// Rings materialized (directed pairs that carry traffic).
  [[nodiscard]] std::size_t rings() const noexcept {
    std::size_t n = 0;
    for (const std::vector<Route>& routes : incoming_) n += routes.size();
    return n;
  }

 private:
  struct Route {
    std::uint32_t src = 0;
    std::unique_ptr<ShardRing> ring;
  };

  /// incoming_[dst] = rings feeding shard dst, sorted by source shard.
  std::vector<std::vector<Route>> incoming_;
};

}  // namespace sigcomp::exp
