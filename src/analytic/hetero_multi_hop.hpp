// Heterogeneous multi-hop chain: the paper's Sec. III-B model assumes
// homogeneous hops (identical loss and delay).  Real signaling paths are
// not homogeneous -- one congested peering link or one slow access hop
// dominates.  This extension generalizes the chain model to per-hop loss
// and delay vectors, preserving the paper's model exactly when all hops
// are equal (asserted by tests).
#pragma once

#include <cstddef>
#include <vector>

#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "markov/ctmc.hpp"
#include "sim/channel_process.hpp"

namespace sigcomp::analytic {

/// Per-hop channel characteristics of a heterogeneous chain.
struct HeteroMultiHopParams {
  std::vector<double> loss;   ///< per-hop *average* loss probability (size = K)
  std::vector<double> delay;  ///< per-hop one-way delay (size = K)
  /// Per-hop loss processes for the simulator.  Empty means every hop runs
  /// iid Bernoulli at loss[i] (the paper's model); otherwise size must be K
  /// and hop i runs loss_process[i] (heterogeneous burstiness -- e.g. one
  /// bursty peering link in an otherwise iid chain).  The analytic model
  /// only ever sees the averages in `loss`.
  std::vector<sim::LossConfig> loss_process;
  double update_rate = 1.0 / 60.0;
  double refresh_timer = 5.0;
  double timeout_timer = 15.0;
  double retrans_timer = 0.120;
  double false_signal_rate = 0.02 * 0.02 * 0.02 * 0.02;

  [[nodiscard]] std::size_t hops() const noexcept { return loss.size(); }

  /// Builds a heterogeneous view of a homogeneous parameter set (including
  /// its loss-process selection, replicated to every hop).
  [[nodiscard]] static HeteroMultiHopParams from_homogeneous(
      const MultiHopParams& params);

  /// The loss process hop i (0-based) should run in the simulator.
  [[nodiscard]] sim::LossConfig hop_loss_config(std::size_t hop) const;

  /// Makes hop i (0-based) bursty: Gilbert-Elliott with stationary mean
  /// loss[hop] and mean burst length `burst_length` messages.  Other hops
  /// keep their current process (iid when none was set).
  void set_hop_bursty(std::size_t hop, double burst_length,
                      double loss_bad = 1.0);

  /// Probability that a message from the sender survives hops 1..k.
  [[nodiscard]] double survival_through(std::size_t k) const;

  /// Expected per-hop transmissions of one end-to-end message.
  [[nodiscard]] double expected_hop_transmissions() const;

  /// HS recovery rate: 1 / (2 * total path delay).
  [[nodiscard]] double recovery_rate() const;

  /// Throws std::invalid_argument on empty/mismatched vectors or values
  /// out of domain.
  void validate() const;
};

/// Heterogeneous generalization of MultiHopModel (SS, SS+RT, HS).
class HeteroMultiHopModel {
 public:
  HeteroMultiHopModel(ProtocolKind kind, HeteroMultiHopParams params);

  [[nodiscard]] ProtocolKind kind() const noexcept { return kind_; }
  [[nodiscard]] const HeteroMultiHopParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const markov::Ctmc& chain() const noexcept { return chain_; }

  [[nodiscard]] double stationary(std::size_t k, int s) const;
  [[nodiscard]] double recovery_probability() const;
  [[nodiscard]] double inconsistency() const;
  [[nodiscard]] double hop_inconsistency(std::size_t hop) const;
  [[nodiscard]] MessageRateBreakdown message_rates() const;
  [[nodiscard]] Metrics metrics() const;

  /// First-timeout-at-hop-(j+1) rate, generalized from Eq. (9): the
  /// refresh-delivery probability through hop j becomes a product of
  /// per-hop survival probabilities.
  [[nodiscard]] static double timeout_rate(const HeteroMultiHopParams& params,
                                           std::size_t j);

 private:
  ProtocolKind kind_;
  HeteroMultiHopParams params_;
  markov::Ctmc chain_;
  std::vector<markov::StateId> fast_;
  std::vector<markov::StateId> slow_;
  std::size_t recovery_ = 0;
  bool has_recovery_ = false;
  std::vector<double> pi_;
};

}  // namespace sigcomp::analytic
