// Differential test of the event-core backends against the naive reference
// implementation and against each other: identical randomized operation
// streams must produce identical observable behavior -- pop sequence (time
// and payload), sizes, emptiness, cancel outcomes -- while the pooled
// backends also honor their heap_entries() compaction bound and free-list
// slot recycling.  Both EventQueue (pooled 4-ary heap) and TimingWheelQueue
// (hashed wheel, including deliberately tiny geometries that force far-list
// cascades) are driven through the same harness; a dedicated test then
// locks the heap and wheel pop streams against each other element-wise.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/reference_event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/timing_wheel_queue.hpp"

namespace sigcomp::sim {
namespace {

/// One pending event's bookkeeping across both queues.
struct PendingPair {
  EventId pooled;
  ReferenceEventId reference;
  std::uint64_t payload;
};

/// Drives one pooled backend (EventQueue or TimingWheelQueue -- both hand
/// out EventId and obey the same compaction bound) and the reference queue
/// through an identical randomized op stream.
template <typename PooledQueue>
class DifferentialDriver {
 public:
  explicit DifferentialDriver(std::uint64_t seed,
                              PooledQueue pooled = PooledQueue())
      : rng_(seed), pooled_(std::move(pooled)) {}

  void run(std::size_t operations) {
    for (std::size_t op = 0; op < operations; ++op) {
      step();
      peak_live_ = std::max(peak_live_, pooled_.size());
      ASSERT_EQ(pooled_.size(), reference_.size()) << "op " << op;
      ASSERT_EQ(pooled_.empty(), reference_.empty()) << "op " << op;
      // Garbage bound: dead husks never exceed the live count at the most
      // recent cancel, so the heap stays within twice the peak live size
      // (plus the small-queue compaction threshold).
      ASSERT_LE(pooled_.heap_entries(), 2 * peak_live_ + 65) << "op " << op;
      if (!pooled_.empty()) {
        ASSERT_DOUBLE_EQ(pooled_.next_time(), reference_.next_time())
            << "op " << op;
      }
    }
    drain();
  }

 private:
  void step() {
    const std::uint64_t roll = rng_.uniform_int(10);
    if (roll < 5) {  // 50% schedule
      push();
    } else if (roll < 8 && !pending_.empty()) {  // 30% cancel
      cancel();
    } else if (!pooled_.empty()) {  // 20% pop
      pop();
    } else {
      push();
    }
  }

  void push() {
    const Time t = rng_.uniform(0.0, 1000.0);
    const std::uint64_t payload = next_payload_++;
    PendingPair pair;
    pair.payload = payload;
    pair.pooled =
        pooled_.push(t, [this, payload] { pooled_fired_.push_back(payload); });
    pair.reference = reference_.push(
        t, [this, payload] { reference_fired_.push_back(payload); });
    pending_.push_back(pair);
  }

  void cancel() {
    const std::size_t pick = rng_.uniform_int(pending_.size());
    const PendingPair pair = pending_[pick];
    pending_.erase(pending_.begin() +
                   static_cast<std::ptrdiff_t>(pick));
    const bool pooled_ok = pooled_.cancel(pair.pooled);
    const bool reference_ok = reference_.cancel(pair.reference);
    ASSERT_EQ(pooled_ok, reference_ok);
    ASSERT_TRUE(pooled_ok) << "cancelling a pending event must succeed";
    // A second cancel through the same handles must fail identically.
    ASSERT_FALSE(pooled_.cancel(pair.pooled));
    ASSERT_FALSE(reference_.cancel(pair.reference));
  }

  void pop() {
    auto pooled_event = pooled_.pop();
    auto reference_event = reference_.pop();
    ASSERT_DOUBLE_EQ(pooled_event.time, reference_event.time);
    pooled_event.action();
    reference_event.action();
    ASSERT_FALSE(pooled_fired_.empty());
    ASSERT_EQ(pooled_fired_.back(), reference_fired_.back())
        << "pop order diverged";
    forget(pooled_fired_.back());
  }

  void drain() {
    while (!pooled_.empty() || !reference_.empty()) {
      ASSERT_FALSE(pooled_.empty());
      ASSERT_FALSE(reference_.empty());
      pop();
    }
    ASSERT_EQ(pooled_fired_, reference_fired_);
    ASSERT_TRUE(pending_.empty());
  }

  void forget(std::uint64_t payload) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].payload == payload) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return;
      }
    }
    FAIL() << "popped an event that was not pending";
  }

  Rng rng_;
  PooledQueue pooled_;
  ReferenceEventQueue reference_;
  std::vector<PendingPair> pending_;
  std::vector<std::uint64_t> pooled_fired_;
  std::vector<std::uint64_t> reference_fired_;
  std::uint64_t next_payload_ = 1;
  std::size_t peak_live_ = 0;
};

TEST(EventCoreDifferential, ValidationBehaviorMatchesReference) {
  EventQueue pooled;
  TimingWheelQueue wheel;
  ReferenceEventQueue reference;
  EXPECT_THROW(pooled.push(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(wheel.push(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(reference.push(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(pooled.push(1.0, EventCallback{}), std::invalid_argument);
  EXPECT_THROW(wheel.push(1.0, EventCallback{}), std::invalid_argument);
  EXPECT_THROW(reference.push(1.0, std::function<void()>{}),
               std::invalid_argument);
  EXPECT_THROW((void)pooled.pop(), std::logic_error);
  EXPECT_THROW((void)wheel.pop(), std::logic_error);
  EXPECT_THROW((void)reference.pop(), std::logic_error);
  EXPECT_THROW((void)pooled.next_time(), std::logic_error);
  EXPECT_THROW((void)wheel.next_time(), std::logic_error);
  EXPECT_THROW((void)reference.next_time(), std::logic_error);
}

TEST(EventCoreDifferential, RandomizedOpsMatchReferenceAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull, 99991ull}) {
    DifferentialDriver<EventQueue> driver(seed);
    driver.run(10000);
  }
}

TEST(EventCoreDifferential, WheelRandomizedOpsMatchReferenceAcrossSeeds) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull, 99991ull}) {
    DifferentialDriver<TimingWheelQueue> driver(seed);
    driver.run(10000);
  }
}

TEST(EventCoreDifferential, TinyWheelRandomizedOpsMatchReference) {
  // An 8-bucket, 50 ms wheel covers 0.4 s of a 1000 s time range: nearly
  // every push overflows to the far list and every advance cascades, so
  // this hammers exactly the wheel-only machinery.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull, 99991ull}) {
    DifferentialDriver<TimingWheelQueue> driver(seed,
                                                TimingWheelQueue(0.05, 8));
    driver.run(10000);
  }
}

TEST(EventCoreDifferential, CoarseWheelRandomizedOpsMatchReference) {
  // The opposite geometry: 250 s buckets put the whole run in ~4 ticks, so
  // the due heap carries hundreds of same-tick events at once.
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    DifferentialDriver<TimingWheelQueue> driver(seed,
                                                TimingWheelQueue(250.0, 4));
    driver.run(10000);
  }
}

TEST(EventCoreDifferential, HeapAndWheelPopStreamsAreIdentical) {
  // The two pooled backends head-to-head: one op stream, element-wise
  // identical pop sequences -- the backend-equivalence contract that lets
  // --event-queue wheel reproduce every golden digest bit-for-bit.
  struct DualPending {
    EventId heap_id;
    EventId wheel_id;
    std::uint64_t payload;
  };
  for (const std::uint64_t seed : {3ull, 29ull, 4242ull}) {
    Rng rng(seed);
    EventQueue heap;
    TimingWheelQueue wheel(0.05, 16);  // tiny: cascades included in the lock
    std::vector<std::uint64_t> heap_fired, wheel_fired;
    std::vector<DualPending> pending;
    std::uint64_t payload = 0;
    for (int op = 0; op < 30000; ++op) {
      const std::uint64_t roll = rng.uniform_int(10);
      if (roll < 5 || heap.empty()) {
        const Time t = rng.uniform(0.0, 1000.0);
        const std::uint64_t p = ++payload;
        DualPending pair;
        pair.payload = p;
        pair.heap_id =
            heap.push(t, [&heap_fired, p] { heap_fired.push_back(p); });
        pair.wheel_id =
            wheel.push(t, [&wheel_fired, p] { wheel_fired.push_back(p); });
        pending.push_back(pair);
      } else if (roll < 8 && !pending.empty()) {
        const std::size_t pick = rng.uniform_int(pending.size());
        ASSERT_TRUE(heap.cancel(pending[pick].heap_id));
        ASSERT_TRUE(wheel.cancel(pending[pick].wheel_id));
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        auto a = heap.pop();
        auto b = wheel.pop();
        ASSERT_DOUBLE_EQ(a.time, b.time);
        a.action();
        b.action();
        ASSERT_EQ(heap_fired.back(), wheel_fired.back())
            << "heap and wheel diverged at op " << op;
        const std::uint64_t fired = heap_fired.back();
        std::erase_if(pending, [fired](const DualPending& pair) {
          return pair.payload == fired;
        });
      }
      ASSERT_EQ(heap.size(), wheel.size());
    }
    while (!heap.empty()) {
      auto a = heap.pop();
      auto b = wheel.pop();
      ASSERT_DOUBLE_EQ(a.time, b.time);
      a.action();
      b.action();
    }
    EXPECT_TRUE(wheel.empty());
    EXPECT_EQ(heap_fired, wheel_fired);
  }
}

TEST(EventCoreDifferential, TieStormMatchesReference) {
  // Many events at identical times: pop order must be insertion order in
  // all three queues.
  EventQueue pooled;
  TimingWheelQueue wheel;
  ReferenceEventQueue reference;
  std::vector<int> pooled_order, wheel_order, reference_order;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Time t = static_cast<Time>(rng.uniform_int(3));
    pooled.push(t, [&pooled_order, i] { pooled_order.push_back(i); });
    wheel.push(t, [&wheel_order, i] { wheel_order.push_back(i); });
    reference.push(t, [&reference_order, i] { reference_order.push_back(i); });
  }
  while (!pooled.empty()) {
    pooled.pop().action();
    wheel.pop().action();
    reference.pop().action();
  }
  EXPECT_EQ(pooled_order, reference_order);
  EXPECT_EQ(wheel_order, reference_order);
}

TEST(EventCoreDifferential, CancelHeavyChurnKeepsBoundsAndOrder) {
  // The soft-state re-arm pattern at differential scale: long-lived timers
  // plus schedule/cancel churn, then a full drain compared element-wise.
  EventQueue pooled;
  ReferenceEventQueue reference;
  std::vector<std::uint64_t> pooled_fired, reference_fired;
  std::vector<PendingPair> rearm;
  Rng rng(23);
  std::uint64_t payload = 0;
  const auto push_both = [&](Time t) {
    const std::uint64_t p = ++payload;
    PendingPair pair;
    pair.payload = p;
    pair.pooled =
        pooled.push(t, [&pooled_fired, p] { pooled_fired.push_back(p); });
    pair.reference = reference.push(
        t, [&reference_fired, p] { reference_fired.push_back(p); });
    return pair;
  };
  for (int i = 0; i < 64; ++i) rearm.push_back(push_both(1e6 + i));
  for (int round = 0; round < 20000; ++round) {
    const std::size_t victim = rng.uniform_int(rearm.size());
    ASSERT_TRUE(pooled.cancel(rearm[victim].pooled));
    ASSERT_TRUE(reference.cancel(rearm[victim].reference));
    rearm[victim] = push_both(1e6 + rng.uniform(0.0, 1000.0));
    ASSERT_EQ(pooled.size(), reference.size());
    ASSERT_LE(pooled.heap_entries(), 2 * pooled.size() + 65);
  }
  while (!pooled.empty()) {
    auto a = pooled.pop();
    auto b = reference.pop();
    ASSERT_DOUBLE_EQ(a.time, b.time);
    a.action();
    b.action();
  }
  EXPECT_TRUE(reference.empty());
  EXPECT_EQ(pooled_fired, reference_fired);
}

TEST(EventCoreDifferential, WheelCancelHeavyChurnKeepsBoundsAndOrder) {
  // The same re-arm pattern against the wheel, on a geometry small enough
  // that the churn crosses the far-list boundary both ways.
  TimingWheelQueue wheel(0.05, 64);
  ReferenceEventQueue reference;
  std::vector<std::uint64_t> wheel_fired, reference_fired;
  std::vector<PendingPair> rearm;
  Rng rng(23);
  std::uint64_t payload = 0;
  const auto push_both = [&](Time t) {
    const std::uint64_t p = ++payload;
    PendingPair pair;
    pair.payload = p;
    pair.pooled =
        wheel.push(t, [&wheel_fired, p] { wheel_fired.push_back(p); });
    pair.reference = reference.push(
        t, [&reference_fired, p] { reference_fired.push_back(p); });
    return pair;
  };
  for (int i = 0; i < 64; ++i) rearm.push_back(push_both(1e6 + i));
  for (int round = 0; round < 20000; ++round) {
    const std::size_t victim = rng.uniform_int(rearm.size());
    ASSERT_TRUE(wheel.cancel(rearm[victim].pooled));
    ASSERT_TRUE(reference.cancel(rearm[victim].reference));
    rearm[victim] = push_both(1e6 + rng.uniform(0.0, 1000.0));
    ASSERT_EQ(wheel.size(), reference.size());
    ASSERT_LE(wheel.heap_entries(), 2 * wheel.size() + 65);
  }
  while (!wheel.empty()) {
    auto a = wheel.pop();
    auto b = reference.pop();
    ASSERT_DOUBLE_EQ(a.time, b.time);
    a.action();
    b.action();
  }
  EXPECT_TRUE(reference.empty());
  EXPECT_EQ(wheel_fired, reference_fired);
}

}  // namespace
}  // namespace sigcomp::sim
