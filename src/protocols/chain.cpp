#include "protocols/chain.hpp"

#include <stdexcept>
#include <utility>

#include "core/topology.hpp"

namespace sigcomp::protocols {

namespace {

/// Keeps the historical error message (and catches the size mismatch before
/// Topology's generic edge-count check).
TreeSpec chain_spec(const std::vector<sim::LossConfig>& hop_loss,
                    const std::vector<sim::DelayConfig>& hop_delay) {
  if (hop_loss.empty() || hop_delay.size() != hop_loss.size()) {
    throw std::invalid_argument(
        "Chain: need one loss and one delay config per hop");
  }
  return TreeSpec::chain(hop_loss.size());
}

}  // namespace

Chain::Chain(sim::Simulator& sim, sim::Rng& channel_rng, sim::Rng& node_rng,
             MechanismSet mech, const TimerSettings& timers,
             const std::vector<sim::LossConfig>& hop_loss,
             const std::vector<sim::DelayConfig>& hop_delay,
             std::function<void()> on_change, sim::TraceLog* trace)
    : topology_(sim, channel_rng, node_rng, mech, timers,
                chain_spec(hop_loss, hop_delay), hop_loss, hop_delay,
                std::move(on_change), trace) {}

}  // namespace sigcomp::protocols
