#include "exp/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sigcomp::exp {
namespace {

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table("t", {}), std::invalid_argument);
}

TEST(Table, AddRowEnforcesColumnCount) {
  Table t("t", {"a", "b"});
  EXPECT_NO_THROW(t.add_row({1.0, 2.0}));
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
  EXPECT_THROW(t.add_row({1.0, 2.0, 3.0}), std::invalid_argument);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 2u);
}

TEST(Table, AtAccessesCells) {
  Table t("t", {"a", "b"});
  t.add_row({std::string("x"), 2.5});
  EXPECT_EQ(std::get<std::string>(t.at(0, 0)), "x");
  EXPECT_DOUBLE_EQ(std::get<double>(t.at(0, 1)), 2.5);
  EXPECT_THROW((void)t.at(1, 0), std::out_of_range);
  EXPECT_THROW((void)t.at(0, 2), std::out_of_range);
}

TEST(Table, PrintContainsTitleHeadersAndValues) {
  Table t("my title", {"name", "value"});
  t.add_row({std::string("alpha"), 1.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# my title"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
}

TEST(Table, PrintAlignsColumns) {
  Table t("t", {"a", "b"});
  t.add_row({std::string("long-cell-content"), 1.0});
  t.add_row({std::string("x"), 2.0});
  std::ostringstream os;
  t.print(os);
  // Find the two data lines and check the second column starts at the same
  // offset (the "1" and "2" characters align).
  std::istringstream lines(os.str());
  std::string line;
  std::vector<std::string> data;
  while (std::getline(lines, line)) {
    if (!line.empty() && (line[0] == 'l' || line[0] == 'x')) data.push_back(line);
  }
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data[0].find('1'), data[1].find('2'));
}

TEST(Table, CsvBasicFormat) {
  Table t("t", {"a", "b"});
  t.add_row({1.0, std::string("x")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n");
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t("t", {"a"});
  t.add_row({std::string("has,comma")});
  t.add_row({std::string("has\"quote")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(Table, WriteCsvFileRoundTrips) {
  Table t("t", {"x", "y"});
  t.add_row({1.5, 2.5});
  const std::string path = ::testing::TempDir() + "/sigcomp_table_test.csv";
  t.write_csv_file(path);
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "x,y");
  EXPECT_EQ(line2, "1.5,2.5");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvFileBadPathThrows) {
  Table t("t", {"a"});
  EXPECT_THROW(t.write_csv_file("/nonexistent-dir-xyz/file.csv"),
               std::runtime_error);
}

TEST(FormatNumber, UsesCompactRepresentation) {
  EXPECT_EQ(format_number(1.0), "1");
  EXPECT_EQ(format_number(0.25), "0.25");
  EXPECT_EQ(format_number(1e-9), "1e-09");
  EXPECT_EQ(format_number(123456789.0), "1.23457e+08");
}

TEST(CsvPathFromArgs, FindsFlag) {
  const char* argv[] = {"prog", "--csv", "/tmp/out.csv"};
  EXPECT_EQ(csv_path_from_args(3, argv), "/tmp/out.csv");
}

TEST(CsvPathFromArgs, AbsentOrDanglingFlagIsEmpty) {
  const char* argv1[] = {"prog"};
  EXPECT_EQ(csv_path_from_args(1, argv1), "");
  const char* argv2[] = {"prog", "--csv"};
  EXPECT_EQ(csv_path_from_args(2, argv2), "");
  const char* argv3[] = {"prog", "--quick"};
  EXPECT_EQ(csv_path_from_args(2, argv3), "");
}

}  // namespace
}  // namespace sigcomp::exp
