// Sensitivity analysis: which parameter actually moves the metrics?
//
// Computes normalized elasticities d(log metric)/d(log parameter) by
// central finite differences -- a +1% change in the parameter moves the
// metric by (elasticity)%.  Useful for deciding which knob to tune and for
// checking model robustness around an operating point.
#pragma once

#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/protocol.hpp"

namespace sigcomp::exp {

/// Elasticities of one metric with respect to one parameter.
struct Sensitivity {
  std::string parameter;        ///< e.g. "loss", "refresh_timer"
  double inconsistency = 0.0;   ///< d log I / d log param
  double message_rate = 0.0;    ///< d log M / d log param
};

/// The parameters probed by sensitivity_analysis, in report order.
[[nodiscard]] std::vector<std::string> sensitivity_parameters();

/// Elasticities of I and M around `params` for `kind`, one entry per
/// parameter of sensitivity_parameters().  `step` is the relative
/// perturbation (default 1%).
///
/// Parameters the protocol does not use (e.g. the refresh timer under HS)
/// report exactly zero.  Throws std::invalid_argument on bad inputs.
[[nodiscard]] std::vector<Sensitivity> sensitivity_analysis(
    ProtocolKind kind, const SingleHopParams& params, double step = 0.01);

/// The parameter with the largest |d log I / d log param|.
[[nodiscard]] Sensitivity most_sensitive(ProtocolKind kind,
                                         const SingleHopParams& params);

}  // namespace sigcomp::exp
