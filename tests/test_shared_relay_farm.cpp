// Tests of the shared-relay workload: the SharedRelayHub protocol endpoint
// in isolation, the fabric farm's determinism contract (element-wise
// identical per-session results across thread counts, shard sizes AND
// event-queue backends), the new counters, option validation, and the
// explicit-teardown pricing satellite.  Suite names carry "SharedRelay" so
// the CI TSan leg picks them up.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/session_farm.hpp"
#include "protocols/message.hpp"
#include "protocols/shared_relay.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::exp {
namespace {

using protocols::Message;
using protocols::MessageType;
using protocols::SharedRelayHub;
using protocols::TimerSettings;

SessionFarmOptions relay_farm(std::size_t sessions, std::size_t relays,
                              std::size_t subscribers_per_relay) {
  SessionFarmOptions options;
  options.seed = 17;
  options.sessions = sessions;
  options.arrival_rate = static_cast<double>(sessions) / 20.0;
  options.session_lifetime = 30.0;
  options.threads = 1;
  options.shared_relays = relays;
  options.subscribers_per_relay = subscribers_per_relay;
  options.keep_per_session = true;
  return options;
}

TEST(SharedRelayHubUnit, InstallExpireReinstallAndComplete) {
  sim::Simulator sim;
  sim::Rng rng(1, 2);
  std::vector<std::pair<std::uint64_t, Message>> sent;
  bool completed = false;
  // SS mechanisms: soft-state timeout on, so an unrefreshed slot expires.
  SharedRelayHub hub(
      sim, rng, mechanisms(ProtocolKind::kSS),
      TimerSettings{sim::Distribution::kDeterministic, 5.0, 15.0, 0.5},
      {9, 3},  // unsorted on purpose: the hub canonicalizes
      [&sent](std::uint64_t dest, const Message& m) {
        sent.emplace_back(dest, m);
      },
      [&completed] { completed = true; });
  hub.begin();

  // Install from subscriber 3 at t = 0: acknowledged immediately.
  hub.handle(3, Message{MessageType::kTrigger, 3, 1, 0});
  EXPECT_EQ(hub.installs(), 1u);
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].first, 3u);
  EXPECT_EQ(sent[0].second.type, MessageType::kAckTrigger);

  // An unknown source is counted and dropped.
  hub.handle(5, Message{MessageType::kTrigger, 5, 1, 0});
  EXPECT_EQ(hub.unknown_dropped(), 1u);
  EXPECT_EQ(hub.installs(), 1u);

  // Fan-out echoes the held value every refresh period (5 s); the slot
  // expires unrefreshed at t = 15, after which fan-out has nothing to echo
  // and the subscriber counts as missing.
  sim.run_until(30.0);
  std::size_t fanout_echoes = 0;
  for (const auto& [dest, msg] : sent) {
    if (msg.type == MessageType::kRefresh) {
      EXPECT_EQ(dest, 3u);
      ++fanout_echoes;
    }
  }
  EXPECT_EQ(fanout_echoes, 2u);  // t = 5 and t = 10; expired afterwards
  EXPECT_EQ(hub.soft_timeouts(), 1u);
  // Missing over [15, 30] of a 30 s window, one of two subscribers.
  EXPECT_NEAR(hub.missing_fraction(30.0), 0.25, 1e-12);

  // A refresh that finds the slot expired re-installs (priced as install).
  hub.handle(3, Message{MessageType::kRefresh, 3, 7, 0});
  EXPECT_EQ(hub.installs(), 2u);
  EXPECT_EQ(hub.refreshes(), 0u);

  // Departures: complete exactly when the last subscriber's REMOVE lands.
  hub.handle(3, Message{MessageType::kRemove, 3, 8, 0});
  EXPECT_FALSE(completed);
  EXPECT_FALSE(hub.complete());
  hub.handle(9, Message{MessageType::kRemove, 9, 1, 0});
  EXPECT_TRUE(completed);
  EXPECT_TRUE(hub.complete());
}

TEST(SharedRelayFarm, RunsAndReportsFabricCounters) {
  const SessionFarmOptions options = relay_farm(48, 4, 6);
  const SessionFarmResult result = run_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), options);
  // 48 subscribers + 4 relay sessions, every one completed and measured.
  EXPECT_EQ(result.sessions, 52u);
  EXPECT_EQ(result.relay_sessions, 4u);
  EXPECT_EQ(result.summary.replications, 52u);
  EXPECT_EQ(result.per_session.size(), 52u);
  // 24 participating subscribers: at least one install each, and every
  // install/refresh/remove crossed the fabric.
  EXPECT_GE(result.relay_installs, 24u);
  EXPECT_GT(result.fabric_messages, 48u);
  EXPECT_GT(result.fabric_rings, 0u);
  EXPECT_GT(result.fabric_epochs, 0u);
  // Relay metrics ride in the tail of per_session: relays live from t = 0,
  // far longer than any subscriber's exponential lifetime window.
  for (std::size_t r = 48; r < 52; ++r) {
    EXPECT_GT(result.per_session[r].session_length, 20.0);
  }
}

TEST(SharedRelayFarm, ElementWiseIdenticalAcrossThreadsAndShardSizes) {
  // The crown-jewel contract extended to communicating sessions: per-session
  // results and every fabric counter must be identical -- element-wise,
  // bitwise -- at any thread count and any shard size.  (Event counts are
  // NOT compared across shard sizes: the flush-event count legitimately
  // depends on the number of shards.)
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  const SessionFarmOptions base = relay_farm(48, 4, 6);
  const SessionFarmResult golden =
      run_session_farm(ProtocolKind::kSS, params, base);
  ASSERT_EQ(golden.per_session.size(), 52u);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::size_t shard_size : {7u, 64u, 4096u}) {
      SessionFarmOptions options = base;
      options.threads = threads;
      options.shard_size = shard_size;
      const SessionFarmResult result =
          run_session_farm(ProtocolKind::kSS, params, options);
      SCOPED_TRACE(testing::Message() << "threads=" << threads
                                      << " shard_size=" << shard_size);
      ASSERT_EQ(result.per_session.size(), golden.per_session.size());
      for (std::size_t i = 0; i < golden.per_session.size(); ++i) {
        EXPECT_EQ(result.per_session[i].inconsistency,
                  golden.per_session[i].inconsistency)
            << "session " << i;
        EXPECT_EQ(result.per_session[i].session_length,
                  golden.per_session[i].session_length)
            << "session " << i;
        EXPECT_EQ(result.per_session[i].raw_message_rate,
                  golden.per_session[i].raw_message_rate)
            << "session " << i;
        EXPECT_EQ(result.per_session[i].message_rate,
                  golden.per_session[i].message_rate)
            << "session " << i;
      }
      EXPECT_EQ(result.messages, golden.messages);
      EXPECT_EQ(result.fabric_messages, golden.fabric_messages);
      EXPECT_EQ(result.fabric_dropped, golden.fabric_dropped);
      EXPECT_EQ(result.fabric_epochs, golden.fabric_epochs);
      EXPECT_EQ(result.relay_installs, golden.relay_installs);
      EXPECT_EQ(result.relay_refreshes, golden.relay_refreshes);
      EXPECT_EQ(result.relay_soft_timeouts, golden.relay_soft_timeouts);
      EXPECT_EQ(result.receiver_timeouts, golden.receiver_timeouts);
      EXPECT_EQ(result.peak_sessions_in_flight,
                golden.peak_sessions_in_flight);
    }
  }
}

TEST(SharedRelayFarm, BitIdenticalAcrossEventQueueBackends) {
  // Same decomposition, both backends: the negotiated epoch horizons (via
  // next_pending_within) and every event must agree exactly, so even the
  // executed-event count matches.
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  SessionFarmOptions heap_options = relay_farm(48, 4, 6);
  heap_options.shard_size = 16;
  heap_options.threads = 2;
  heap_options.event_queue = sim::EventQueueBackend::kHeap;
  SessionFarmOptions wheel_options = heap_options;
  wheel_options.event_queue = sim::EventQueueBackend::kWheel;
  const SessionFarmResult heap =
      run_session_farm(ProtocolKind::kSSRT, params, heap_options);
  const SessionFarmResult wheel =
      run_session_farm(ProtocolKind::kSSRT, params, wheel_options);
  ASSERT_EQ(heap.per_session.size(), wheel.per_session.size());
  for (std::size_t i = 0; i < heap.per_session.size(); ++i) {
    EXPECT_EQ(heap.per_session[i].inconsistency,
              wheel.per_session[i].inconsistency);
    EXPECT_EQ(heap.per_session[i].raw_message_rate,
              wheel.per_session[i].raw_message_rate);
  }
  EXPECT_EQ(heap.messages, wheel.messages);
  EXPECT_EQ(heap.fabric_messages, wheel.fabric_messages);
  EXPECT_EQ(heap.fabric_epochs, wheel.fabric_epochs);
  EXPECT_EQ(heap.events_executed, wheel.events_executed);
  EXPECT_EQ(heap.horizon, wheel.horizon);
}

TEST(SharedRelayFarm, ZeroRelaysLeavesFabricCountersZero) {
  SessionFarmOptions options = relay_farm(60, 0, 16);
  const SessionFarmResult result = run_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), options);
  EXPECT_EQ(result.sessions, 60u);
  EXPECT_EQ(result.relay_sessions, 0u);
  EXPECT_EQ(result.fabric_messages, 0u);
  EXPECT_EQ(result.fabric_rings, 0u);
  EXPECT_EQ(result.fabric_epochs, 0u);
  EXPECT_EQ(result.fabric_dropped, 0u);
  EXPECT_EQ(result.relay_installs, 0u);
  EXPECT_EQ(result.teardown_messages, 0u);
}

TEST(SharedRelayFarm, ValidatesRelayOptions) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  // More subscriptions than sessions.
  SessionFarmOptions options = relay_farm(40, 4, 11);
  EXPECT_THROW((void)run_session_farm(ProtocolKind::kSS, params, options),
               std::invalid_argument);
  // Relays without subscribers are meaningless.
  options = relay_farm(40, 4, 0);
  EXPECT_THROW((void)run_session_farm(ProtocolKind::kSS, params, options),
               std::invalid_argument);
  // Shared relays are a single-hop workload.
  MultiHopParams chain;
  chain.hops = 2;
  options = relay_farm(40, 4, 4);
  EXPECT_THROW((void)run_session_farm(ProtocolKind::kSSRT, chain, options),
               std::invalid_argument);
  // Exactly at the bound is legal.
  options = relay_farm(40, 4, 10);
  const SessionFarmResult result =
      run_session_farm(ProtocolKind::kSS, params, options);
  EXPECT_EQ(result.sessions, 44u);
}

TEST(SharedRelayTeardown, TreeFarmPricesExplicitTeardown) {
  // The teardown flag replaces the silent window-end stop() with an
  // explicit remove() plus grace period: the removal traffic shows up both
  // in the per-session message counts and in teardown_messages, while the
  // measurement window itself -- and thus inconsistency -- is untouched.
  MultiHopParams chain;
  chain.hops = 3;
  SessionFarmOptions options;
  options.seed = 23;
  options.sessions = 60;
  options.arrival_rate = 3.0;
  options.session_lifetime = 30.0;
  options.threads = 1;
  const SessionFarmResult silent =
      run_session_farm(ProtocolKind::kSSRT, chain, options);
  SessionFarmOptions teardown_options = options;
  teardown_options.teardown = true;
  const SessionFarmResult teardown =
      run_session_farm(ProtocolKind::kSSRT, chain, teardown_options);
  EXPECT_EQ(silent.teardown_messages, 0u);
  EXPECT_GT(teardown.teardown_messages, 0u);
  EXPECT_EQ(teardown.messages, silent.messages + teardown.teardown_messages);
  EXPECT_EQ(teardown.sessions, silent.sessions);
  EXPECT_EQ(teardown.summary.mean.inconsistency,
            silent.summary.mean.inconsistency);
  EXPECT_GT(teardown.summary.mean.raw_message_rate,
            silent.summary.mean.raw_message_rate);

  // Teardown pricing obeys the determinism contract too.
  SessionFarmOptions parallel_options = teardown_options;
  parallel_options.threads = 4;
  parallel_options.shard_size = 13;
  const SessionFarmResult parallel =
      run_session_farm(ProtocolKind::kSSRT, chain, parallel_options);
  EXPECT_EQ(parallel.teardown_messages, teardown.teardown_messages);
  EXPECT_EQ(parallel.messages, teardown.messages);
}

TEST(SharedRelayTeardown, SingleHopRejectsTeardownFlag) {
  SessionFarmOptions options;
  options.sessions = 10;
  options.teardown = true;
  EXPECT_THROW(
      (void)run_session_farm(ProtocolKind::kSS,
                             SingleHopParams::kazaa_defaults(), options),
      std::invalid_argument);
}

}  // namespace
}  // namespace sigcomp::exp
