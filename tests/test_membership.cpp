// Dynamic leaf membership (IGMP-style churn): graft/prune semantics on the
// wired topology, per-protocol removal behavior at the prune point, the
// churn harness metrics (setup latency, orphan window), determinism across
// replays / thread counts / shard sizes, and mid-churn teardown hygiene.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/topology.hpp"
#include "exp/session_farm.hpp"
#include "protocols/membership.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/topology.hpp"
#include "protocols/tree_run.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp {
namespace {

/// A lossless, deterministic wired tree: membership transitions become
/// exactly reproducible so per-protocol removal semantics can be asserted
/// sharply.
struct Wired {
  sim::Simulator sim;
  sim::Rng channel_rng{7, 0};
  sim::Rng node_rng{7, 1};
  std::unique_ptr<protocols::Topology> topology;

  explicit Wired(ProtocolKind kind, const TreeSpec& spec,
                 double delay = 0.01) {
    const std::vector<sim::LossConfig> loss(spec.edges(),
                                            sim::LossConfig::iid(0.0));
    const std::vector<sim::DelayConfig> delays(
        spec.edges(),
        sim::DelayConfig{sim::DelayModel::kDeterministic, delay, 1.5});
    protocols::TimerSettings timers;  // R=5, T=15, deterministic
    topology = std::make_unique<protocols::Topology>(
        sim, channel_rng, node_rng, mechanisms(kind), timers, spec, loss,
        delays, nullptr);
  }
};

// ------------------------------------------------- topology bookkeeping --

TEST(TopologyMembership, JoinLeaveBookkeeping) {
  Wired w(ProtocolKind::kSS, TreeSpec::balanced(2, 2));  // leaves 3..6
  protocols::Topology& t = *w.topology;
  EXPECT_EQ(t.active_leaf_count(), 4u);
  for (std::size_t node = 0; node < t.spec().nodes(); ++node) {
    EXPECT_TRUE(t.node_required(node)) << node;
  }
  EXPECT_THROW((void)t.leaf_active(1), std::invalid_argument);  // interior
  EXPECT_THROW((void)t.join(3), std::invalid_argument);  // already joined

  // Leaf 3 departs: only its own edge dies (node 1 still feeds leaf 4).
  const protocols::Topology::PruneResult first = t.leave(3);
  EXPECT_EQ(first.pruned_edges, (std::vector<std::size_t>{2}));
  EXPECT_EQ(t.active_leaf_count(), 3u);
  EXPECT_FALSE(t.leaf_active(3));
  EXPECT_FALSE(t.node_required(3));
  EXPECT_TRUE(t.node_required(1));
  EXPECT_THROW((void)t.leave(3), std::invalid_argument);  // already gone

  // Leaf 4 departs too: node 1's whole subtree is dead, so the prune point
  // climbs to the root's edge 0.
  const protocols::Topology::PruneResult second = t.leave(4);
  EXPECT_EQ(second.pruned_edges, (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(second.prune_edge(), 0u);
  EXPECT_FALSE(t.node_required(1));

  // Rejoining leaf 3 reactivates exactly the dead path edges.
  const protocols::Topology::GraftResult graft = t.join(3);
  EXPECT_EQ(graft.activated_edges, (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(t.node_required(1));
  EXPECT_FALSE(t.node_required(4));
}

// ------------------------------------- removal semantics at prune points --

/// Leaves leaf 3 of a running fanout-2 depth-2 tree and reports how long
/// its relay keeps the orphaned copy.
double orphan_duration(ProtocolKind kind) {
  Wired w(kind, TreeSpec::balanced(2, 2));
  protocols::Topology& t = *w.topology;
  t.sender().start(1);
  w.sim.run_until(1.0);  // everything installed (lossless)
  EXPECT_TRUE(t.relay(2).value().has_value()) << to_string(kind);
  const double left_at = w.sim.now();
  t.leave(3);
  while (t.relay(2).value().has_value() && w.sim.step()) {
  }
  EXPECT_FALSE(t.relay(2).value().has_value()) << to_string(kind);
  return w.sim.now() - left_at;
}

TEST(Membership, PruneUsesEachProtocolsRemovalSemantics) {
  // Timeout prune (SS, SS+RT): the orphan lives until the soft-state
  // timeout (T = 15) fires -- refreshes stopped at the prune.
  EXPECT_GT(orphan_duration(ProtocolKind::kSS), 5.0);
  EXPECT_GT(orphan_duration(ProtocolKind::kSSRT), 5.0);
  // Explicit removal (best-effort or reliable) and the hard-state teardown
  // clear the branch in one propagation delay.
  EXPECT_LT(orphan_duration(ProtocolKind::kSSER), 1.0);
  EXPECT_LT(orphan_duration(ProtocolKind::kSSRTR), 1.0);
  EXPECT_LT(orphan_duration(ProtocolKind::kHS), 1.0);
}

TEST(Membership, GraftReinstallsDownThePathOnly) {
  // Deep chain below the root: 0 -> 1 -> 2 (leaf 2).  After the leaf
  // departs and its state is explicitly removed, a rejoin must re-install
  // from the deepest cached copy without waiting for the next refresh.
  Wired w(ProtocolKind::kSSER, TreeSpec::chain(2));
  protocols::Topology& t = *w.topology;
  t.sender().start(42);
  w.sim.run_until(1.0);
  t.leave(2);
  w.sim.run_until(2.0);  // removal delivered; the whole chain is clean
  // The chain's only leaf left, so the prune point is the root's edge and
  // the removal swept both relays.
  ASSERT_FALSE(t.relay(0).value().has_value());
  ASSERT_FALSE(t.relay(1).value().has_value());
  const protocols::Topology::GraftResult graft = t.join(2);
  EXPECT_EQ(graft.activated_edges.size(), 2u);
  w.sim.run_until(2.5);  // two propagation delays << refresh interval (5 s)
  EXPECT_TRUE(t.relay(1).value().has_value());
  EXPECT_EQ(t.relay(1).value(), t.sender().value());
  EXPECT_EQ(t.relay(0).value(), t.sender().value());
}

TEST(Membership, SenderRemoveTearsDownExplicitRemovalTrees) {
  for (const ProtocolKind kind :
       {ProtocolKind::kSSER, ProtocolKind::kSSRTR, ProtocolKind::kHS}) {
    Wired w(kind, TreeSpec::balanced(2, 2));
    protocols::Topology& t = *w.topology;
    t.sender().start(1);
    w.sim.run_until(1.0);
    t.sender().remove();
    EXPECT_FALSE(t.sender().value().has_value()) << to_string(kind);
    w.sim.run_until(2.0);
    for (std::size_t i = 0; i < t.relays(); ++i) {
      EXPECT_FALSE(t.relay(i).value().has_value())
          << to_string(kind) << " relay " << i;
    }
  }
}

// ------------------------------------------------------ churn harness ----

analytic::TreeParams churn_tree(std::size_t fanout, std::size_t depth) {
  MultiHopParams base;
  base.loss = 0.01;
  base.delay = 0.01;
  base.update_rate = 1.0 / 60.0;
  return analytic::TreeParams::balanced(base, fanout, depth);
}

protocols::TreeSimOptions churn_options(double lifetime, double rejoin) {
  protocols::TreeSimOptions options;
  options.seed = 404;
  options.duration = 4000.0;
  options.churn.leaf_lifetime = lifetime;
  options.churn.rejoin_rate = rejoin;
  return options;
}

TEST(ChurnRun, AllFiveProtocolsChurnOnAFanoutTwoTree) {
  for (const ProtocolKind kind : kAllProtocols) {
    const protocols::TreeSimResult result = protocols::run_tree(
        kind, churn_tree(2, 2), churn_options(40.0, 1.0 / 20.0));
    EXPECT_GT(result.churn.leaves, 10u) << to_string(kind);
    EXPECT_GT(result.churn.joins, 10u) << to_string(kind);
    EXPECT_GT(result.churn.completed_joins, 0u) << to_string(kind);
    EXPECT_GT(result.churn.resolved_orphans, 0u) << to_string(kind);
    EXPECT_GE(result.churn.mean_setup_latency(), 0.0) << to_string(kind);
    EXPECT_GE(result.churn.orphan_window_max,
              result.churn.mean_orphan_window())
        << to_string(kind);
  }
}

TEST(ChurnRun, ExplicitLeaveShrinksTheOrphanWindow) {
  // The IGMPv1 -> v2 story: timeout-only leave (SS) keeps forwarding to
  // departed members for ~T; an explicit Leave (SS+ER) prunes in one
  // propagation delay.  Reliable removal keeps the ordering.
  const auto window = [&](ProtocolKind kind) {
    return protocols::run_tree(kind, churn_tree(2, 2),
                               churn_options(40.0, 1.0 / 20.0))
        .churn.mean_orphan_window();
  };
  const double ss = window(ProtocolKind::kSS);
  const double sser = window(ProtocolKind::kSSER);
  const double ssrtr = window(ProtocolKind::kSSRTR);
  EXPECT_GT(ss, 5.0);      // dominated by the T = 15 timeout
  EXPECT_LT(sser, 1.0);    // one ~10 ms propagation delay per hop
  EXPECT_LT(ssrtr, 1.0);
  EXPECT_GT(ss, 5.0 * sser);
}

TEST(ChurnRun, ReportsAreDeterministicAcrossReplays) {
  const protocols::TreeSimOptions options = churn_options(30.0, 1.0 / 15.0);
  const protocols::TreeSimResult a =
      protocols::run_tree(ProtocolKind::kSSER, churn_tree(2, 2), options);
  const protocols::TreeSimResult b =
      protocols::run_tree(ProtocolKind::kSSER, churn_tree(2, 2), options);
  EXPECT_EQ(a.churn, b.churn);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.metrics.inconsistency, b.metrics.inconsistency);
}

TEST(ChurnRun, ZeroChurnMatchesTheStaticTreeBitwise) {
  // churn.leaf_lifetime == 0 must leave the run untouched -- the membership
  // stream exists but is never drawn from.
  const analytic::TreeParams tree = churn_tree(2, 2);
  protocols::TreeSimOptions options;
  options.seed = 11;
  options.duration = 2000.0;
  const protocols::TreeSimResult plain =
      protocols::run_tree(ProtocolKind::kSSRT, tree, options);
  options.churn.rejoin_rate = 1.0;  // enabled only by leaf_lifetime > 0
  const protocols::TreeSimResult zero =
      protocols::run_tree(ProtocolKind::kSSRT, tree, options);
  EXPECT_EQ(plain.messages, zero.messages);
  EXPECT_EQ(plain.metrics.inconsistency, zero.metrics.inconsistency);
  EXPECT_EQ(zero.churn, protocols::ChurnReport{});
}

TEST(ChurnRun, ChainTailChurnsLikeAOneLeafTree) {
  // The degenerate tree has one leaf (the chain tail); churn prunes and
  // regrafts the entire chain at the root.
  MultiHopParams base;
  base.loss = 0.01;
  base.hops = 3;
  const protocols::TreeSimResult result =
      protocols::run_tree(ProtocolKind::kSSRTR, analytic::TreeParams::chain(base),
                          churn_options(50.0, 1.0 / 25.0));
  EXPECT_GT(result.churn.leaves, 5u);
  EXPECT_GT(result.churn.completed_joins, 0u);
}

// ----------------------------------------------------------- churn farm --

TEST(ChurnFarm, BitIdenticalAcrossShardSizesAndThreads) {
  exp::SessionFarmOptions base;
  base.seed = 77;
  base.sessions = 48;
  base.arrival_rate = 4.0;
  base.session_lifetime = 90.0;
  base.leaf_churn.leaf_lifetime = 25.0;
  base.leaf_churn.rejoin_rate = 1.0 / 10.0;
  base.shard_size = 48;
  base.threads = 1;
  const analytic::TreeParams tree = churn_tree(2, 2);
  const exp::SessionFarmResult one =
      exp::run_session_farm(ProtocolKind::kSSER, tree, base);
  EXPECT_GT(one.churn.leaves, 0u);
  EXPECT_GT(one.churn.completed_joins, 0u);
  for (const std::size_t shard_size : {7u, 16u}) {
    for (const std::size_t threads : {2u, 8u}) {
      exp::SessionFarmOptions sharded = base;
      sharded.shard_size = shard_size;
      sharded.threads = threads;
      const exp::SessionFarmResult many =
          exp::run_session_farm(ProtocolKind::kSSER, tree, sharded);
      EXPECT_EQ(one.churn, many.churn)
          << "shard " << shard_size << " threads " << threads;
      EXPECT_EQ(one.messages, many.messages);
      EXPECT_EQ(one.summary.mean.inconsistency,
                many.summary.mean.inconsistency);
      EXPECT_EQ(one.receiver_timeouts, many.receiver_timeouts);
    }
  }
}

// ------------------------------------------------------ teardown hygiene --

TEST(ChurnTeardown, StopMidChurnLeavesNoDanglingEventsAndAFlatPool) {
  sim::Simulator sim;
  sim::Rng channel_rng(55, 0);
  sim::Rng node_rng(55, 1);
  sim::Rng membership_rng(55, 2);
  const TreeSpec spec = TreeSpec::balanced(2, 2);
  const std::vector<sim::LossConfig> loss(spec.edges(),
                                          sim::LossConfig::iid(0.0));
  const std::vector<sim::DelayConfig> delay(
      spec.edges(),
      sim::DelayConfig{sim::DelayModel::kDeterministic, 0.02, 1.5});
  protocols::ChurnOptions churn;
  churn.leaf_lifetime = 3.0;
  churn.rejoin_rate = 1.0;

  for (const ProtocolKind kind : kAllProtocols) {
    std::size_t flat_capacity = 0;
    for (int cycle = 0; cycle < 25; ++cycle) {
      protocols::TimerSettings timers;
      auto topology = std::make_unique<protocols::Topology>(
          sim, channel_rng, node_rng, mechanisms(kind), timers, spec, loss,
          delay, nullptr);
      auto controller = std::make_unique<protocols::MembershipController>(
          sim, *topology, membership_rng, churn, nullptr);
      topology->sender().start(cycle + 1);
      controller->start();
      // Mid-churn: leaves have left and rejoined, prunes/grafts and (for
      // the ER protocols) removals are in flight.
      sim.run_until(sim.now() + 9.7);
      controller->finish();
      topology->stop();
      // Leftover channel deliveries and dead membership timers must drain
      // without resurrecting anything.
      sim.run();
      EXPECT_TRUE(sim.idle()) << to_string(kind) << " cycle " << cycle;
      EXPECT_EQ(sim.pending_events(), 0u) << to_string(kind);
      controller.reset();
      topology.reset();
      // Churn draws differ per cycle, so let the pool reach its working
      // set before pinning it flat.
      if (cycle == 4) {
        flat_capacity = sim.slot_capacity();
      } else if (cycle > 4) {
        EXPECT_EQ(sim.slot_capacity(), flat_capacity)
            << to_string(kind) << ": event pool grew at cycle " << cycle;
      }
    }
  }
}

}  // namespace
}  // namespace sigcomp
