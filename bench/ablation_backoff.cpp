// Ablation: fixed vs staged (exponentially backed-off) retransmission
// timers for the reliable protocols, under increasing loss.  Staged timers
// are what Pan & Schulzrinne proposed for RSVP (cited by the paper); the
// question is how many messages they save and what consistency they cost.
//
// Usage: ablation_backoff [--csv PATH]
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.removal_rate = 1.0 / 600.0;

  exp::Table table(
      "Fixed (Gamma) vs staged (x2 backoff) retransmission, simulated, "
      "10-minute sessions",
      {"loss", "protocol", "I fixed", "I staged", "M fixed", "M staged",
       "msg saving %"});

  for (const double loss : {0.05, 0.15, 0.3, 0.45}) {
    SingleHopParams p = params;
    p.loss = loss;
    for (const ProtocolKind kind :
         {ProtocolKind::kSSRT, ProtocolKind::kSSRTR, ProtocolKind::kHS}) {
      protocols::SimOptions fixed;
      fixed.sessions = 600;
      fixed.seed = 21;
      protocols::SimOptions staged = fixed;
      staged.retrans_backoff = 2.0;
      const auto f = evaluate_simulated(kind, p, fixed);
      const auto s = evaluate_simulated(kind, p, staged);
      const double saving = 100.0 * (1.0 - s.metrics.message_rate /
                                               f.metrics.message_rate);
      table.add_row({loss, std::string(to_string(kind)),
                     f.metrics.inconsistency, s.metrics.inconsistency,
                     f.metrics.message_rate, s.metrics.message_rate, saving});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: at the paper's 2-5% loss the stages rarely engage and "
         "both behave alike.  Under heavy loss, backoff trades a modest "
         "consistency hit (later stages wait longer) for a real reduction "
         "in retransmission traffic -- most visible for HS, which has no "
         "refresh fallback.\n";

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
