// Single-hop simulation harness.
//
// Executes the real protocol engines over a lossy channel with the renewal
// construction the analytic model uses for its stationary analysis: the
// instant a session is absorbed (state removed at both ends), a new session
// begins.  Reports the same metrics as analytic::SingleHopModel, so the two
// can be compared directly (Figs. 11 and 12 of the paper).
#pragma once

#include <cstdint>

#include "core/metrics.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace sigcomp::protocols {

/// Law of the sender's session lifetime.  The analytic model assumes
/// exponential; measured P2P/membership session lengths are heavy-tailed,
/// so the simulator can probe the model's robustness to that assumption.
enum class LifetimeDistribution {
  kExponential,  ///< the model's assumption
  kPareto,       ///< heavy tail; `lifetime_shape` is the tail index (> 1)
  kLognormal,    ///< skewed; `lifetime_shape` is sigma (log-scale spread)
};

/// Options of a single simulation run.
struct SimOptions {
  std::uint64_t seed = 1;       ///< RNG family seed
  /// Event-queue backend of the run's Simulator.  A pure performance knob:
  /// both backends pop in the identical (time, insertion-seq) order, so the
  /// run -- golden digests included -- is bit-identical either way.
  sim::EventQueueBackend event_queue = sim::kDefaultEventQueueBackend;
  std::size_t sessions = 2000;  ///< renewal sessions to simulate
  /// Protocol timers: deterministic reproduces the paper's simulation
  /// (Figs. 11-12); exponential matches the analytic model's assumption
  /// (used by the validation tests).
  sim::Distribution timer_dist = sim::Distribution::kDeterministic;
  /// Channel delay law.  The mean is always params.delay; `delay_shape` is
  /// the Pareto tail index or lognormal sigma for the heavy-tail laws.
  /// (The loss process comes from the parameter set: see
  /// SingleHopParams::loss_config and with_bursty_loss.)
  sim::DelayModel delay_model = sim::DelayModel::kExponential;
  double delay_shape = 1.5;  ///< Pareto tail index / lognormal sigma

  /// Fraction of sessions that end in a sender CRASH instead of a graceful
  /// removal: nothing is signaled and the receiver's orphaned state must be
  /// cleaned up by timeout (soft state) or the external failure detector
  /// (hard state).  Clark's survivability scenario.
  double crash_fraction = 0.0;
  /// Mean delay for the hard-state external detector to notice a crashed
  /// sender (exponentially distributed).  Ignored by soft-state protocols,
  /// which recover via their own timeout.
  double crash_detection_delay = 5.0;

  /// Staged-retransmission backoff factor (1.0 = fixed Gamma, the paper's
  /// protocols; 2.0 = classic exponential backoff).
  double retrans_backoff = 1.0;

  /// Session-lifetime law; the mean is always params.mean_lifetime().
  LifetimeDistribution lifetime_dist = LifetimeDistribution::kExponential;
  /// Tail index (Pareto, must be > 1) or sigma (lognormal).
  double lifetime_shape = 1.5;

  /// Optional trace sink; when set, channel send/drop/deliver events and
  /// session lifecycle events are recorded.
  sim::TraceLog* trace = nullptr;
};

/// Result of one simulation run.
struct SimResult {
  Metrics metrics;                 ///< same semantics as the analytic Metrics
  std::uint64_t messages = 0;      ///< total signaling messages sent
  double total_time = 0.0;         ///< simulated seconds until last absorption
  std::size_t sessions = 0;        ///< completed sessions
  std::uint64_t receiver_timeouts = 0;  ///< soft-state timeout expirations
  std::size_t crashes = 0;         ///< sessions that ended in a sender crash
  /// Mean time from sender removal/crash until the receiver's copy was
  /// gone (the orphaned-state window), across all sessions.
  double mean_orphan_time = 0.0;
};

/// Runs one replication.  Throws std::invalid_argument on bad parameters.
[[nodiscard]] SimResult run_single_hop(ProtocolKind kind,
                                       const SingleHopParams& params,
                                       const SimOptions& options);

/// Inconsistency-ratio and normalized-message-rate estimates with 95%
/// confidence intervals across `replications` independent runs (seeds
/// options.seed, options.seed + 1, ...).
struct ReplicatedResult {
  sim::ConfidenceInterval inconsistency;  ///< inconsistency ratio I
  sim::ConfidenceInterval message_rate;   ///< normalized message rate M
  std::size_t replications = 0;           ///< independent runs aggregated
};

/// Runs `replications` independent simulations and aggregates them (see
/// ReplicatedResult).
[[nodiscard]] ReplicatedResult run_single_hop_replicated(
    ProtocolKind kind, const SingleHopParams& params, const SimOptions& options,
    std::size_t replications);

}  // namespace sigcomp::protocols
