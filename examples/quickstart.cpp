// Quickstart: evaluate all five signaling protocols at the paper's default
// ("Kazaa") operating point, analytically and by simulation.
//
//   $ ./quickstart
//
// prints one row per protocol with the inconsistency ratio I, the normalized
// signaling message rate M, and the integrated cost C = 10*I + M, from both
// the Markov model and the discrete-event simulator.
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/table.hpp"

int main() {
  using namespace sigcomp;

  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  protocols::SimOptions sim_options;
  sim_options.sessions = 400;
  sim_options.seed = 7;

  exp::Table table(
      "Signaling protocol comparison, single hop, Kazaa defaults "
      "(pl=0.02, D=30ms, 1/lu=20s, 1/lr=1800s, R=5s, T=15s, G=120ms)",
      {"protocol", "I (model)", "I (sim)", "M (model)", "M (sim)",
       "cost C (model)"});

  for (const ProtocolKind kind : kAllProtocols) {
    const Metrics model = evaluate_analytic(kind, params);
    const protocols::SimResult sim = evaluate_simulated(kind, params, sim_options);
    table.add_row({std::string(to_string(kind)), model.inconsistency,
                   sim.metrics.inconsistency, model.message_rate,
                   sim.metrics.message_rate, integrated_cost(model)});
  }
  table.print(std::cout);

  std::cout << "\nReading: lower is better everywhere. SS+ER fixes most of "
               "SS's inconsistency for almost no extra messages;\n"
               "SS+RTR reaches hard-state consistency while keeping "
               "soft-state robustness.\n";
  return 0;
}
