// Golden-trace determinism lock: run every protocol single- and multi-hop
// (and on a fan-out tree) under a pinned seed, hash the full TraceLog
// record stream, and compare against checked-in digests.
//
// The digest covers every record's time (as IEEE-754 bits), category and
// detail string, so ANY change in event ordering, channel arithmetic, RNG
// consumption or trace formatting moves it.  This is the tripwire for
// accidental behavior changes from event-core/scheduler refactors: when a
// digest moves and the change is *intended*, regenerate by running this
// test and copying the "actual" values from the failure message.  The full
// recipe -- including how to add a digest for a new protocol or topology --
// lives in docs/TESTING.md.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/session_farm.hpp"
#include "protocols/multi_hop_run.hpp"
#include "protocols/single_hop_run.hpp"
#include "protocols/tree_run.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace sigcomp {
namespace {

/// FNV-1a 64-bit over the full record stream.
class TraceDigest {
 public:
  void add_bytes(const void* data, std::size_t n) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }

  void add_record(const sim::TraceRecord& record) noexcept {
    const auto time_bits = std::bit_cast<std::uint64_t>(record.time);
    add_bytes(&time_bits, sizeof(time_bits));
    const auto category = static_cast<unsigned char>(record.category);
    add_bytes(&category, 1);
    add_bytes(record.detail.data(), record.detail.size());
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

std::uint64_t digest_of(const sim::TraceLog& log) {
  TraceDigest digest;
  for (const sim::TraceRecord& record : log.records()) {
    digest.add_record(record);
  }
  return digest.value();
}

std::string hex(std::uint64_t v) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

std::uint64_t single_hop_digest(
    ProtocolKind kind,
    sim::EventQueueBackend backend = sim::EventQueueBackend::kHeap) {
  sim::TraceLog log(1 << 20);
  protocols::SimOptions options;
  options.event_queue = backend;
  options.seed = 2024;
  options.sessions = 30;
  options.trace = &log;
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.removal_rate = 1.0 / 30.0;  // short sessions keep the trace bounded
  const auto result = protocols::run_single_hop(kind, params, options);
  EXPECT_EQ(result.sessions, 30u);
  EXPECT_LT(log.total_recorded(), log.capacity())  // nothing evicted
      << "trace overflowed; the digest would silently cover a suffix only";
  return digest_of(log);
}

std::uint64_t multi_hop_digest(
    ProtocolKind kind,
    sim::EventQueueBackend backend = sim::EventQueueBackend::kHeap) {
  sim::TraceLog log(1 << 20);
  protocols::MultiHopSimOptions options;
  options.event_queue = backend;
  options.seed = 2024;
  options.duration = 300.0;
  options.trace = &log;
  MultiHopParams params;
  params.hops = 3;
  (void)protocols::run_multi_hop(kind, params, options);
  EXPECT_LT(log.total_recorded(), log.capacity())
      << "trace overflowed; the digest would silently cover a suffix only";
  return digest_of(log);
}

/// Tree harness under the multi-hop pin conditions (seed 2024, 300 s,
/// per-edge defaults from MultiHopParams).
std::uint64_t tree_digest(
    ProtocolKind kind, const analytic::TreeParams& tree,
    sim::EventQueueBackend backend = sim::EventQueueBackend::kHeap) {
  sim::TraceLog log(1 << 20);
  protocols::TreeSimOptions options;
  options.event_queue = backend;
  options.seed = 2024;
  options.duration = 300.0;
  options.trace = &log;
  (void)protocols::run_tree(kind, tree, options);
  EXPECT_LT(log.total_recorded(), log.capacity())
      << "trace overflowed; the digest would silently cover a suffix only";
  return digest_of(log);
}

struct GoldenEntry {
  ProtocolKind kind;
  std::uint64_t digest;
};

// Pinned against the PR 3 event core.  See docs/TESTING.md before "fixing"
// a mismatch by editing these constants.
constexpr GoldenEntry kSingleHopGolden[] = {
    {ProtocolKind::kSS, 0x5369480b0c5f602dULL},
    {ProtocolKind::kSSER, 0xe9b3b8395351ff0aULL},
    {ProtocolKind::kSSRT, 0xea6c3714f0f6b7b9ULL},
    {ProtocolKind::kSSRTR, 0xd967c29bef6d3287ULL},
    {ProtocolKind::kHS, 0x4cd155646150f6f1ULL},
};

// The PR 3 chain digests.  The PR 4 tree generalization MUST keep these
// bit-for-bit: a fan-out-1 tree is the chain.  The PR 5 StateSlot refactor
// (explicit removal + membership on trees) must keep them too -- SS+ER and
// SS+RTR were pinned when PR 5 opened the chain to them; with no removal in
// flight they replay SS / SS+RT exactly, hence the duplicated digests.
constexpr GoldenEntry kMultiHopGolden[] = {
    {ProtocolKind::kSS, 0xeca1ca36a4fe8658ULL},
    {ProtocolKind::kSSER, 0xeca1ca36a4fe8658ULL},
    {ProtocolKind::kSSRT, 0xf9691707db6155edULL},
    {ProtocolKind::kSSRTR, 0xf9691707db6155edULL},
    {ProtocolKind::kHS, 0x7ddfdce05e469af2ULL},
};

TEST(GoldenTrace, SingleHopRecordStreamsArePinned) {
  for (const GoldenEntry& entry : kSingleHopGolden) {
    const std::uint64_t actual = single_hop_digest(entry.kind);
    EXPECT_EQ(actual, entry.digest)
        << "single-hop " << to_string(entry.kind)
        << " trace digest moved; actual " << hex(actual);
  }
}

TEST(GoldenTrace, MultiHopRecordStreamsArePinned) {
  for (const GoldenEntry& entry : kMultiHopGolden) {
    const std::uint64_t actual = multi_hop_digest(entry.kind);
    EXPECT_EQ(actual, entry.digest)
        << "multi-hop " << to_string(entry.kind)
        << " trace digest moved; actual " << hex(actual);
  }
}

TEST(GoldenTrace, DegenerateTreeReproducesChainDigests) {
  // The tree harness on a fan-out-1 spec must replay the chain harness
  // exactly: same RNG substreams, same wiring order, same trace labels --
  // so its digests are the *chain* constants above, not new ones.
  MultiHopParams chain;
  chain.hops = 3;
  const analytic::TreeParams params = analytic::TreeParams::chain(chain);
  for (const GoldenEntry& entry : kMultiHopGolden) {
    const std::uint64_t actual = tree_digest(entry.kind, params);
    EXPECT_EQ(actual, entry.digest)
        << "degenerate tree " << to_string(entry.kind)
        << " diverged from the chain golden trace; actual " << hex(actual);
  }
}

TEST(GoldenTrace, FanOutTreeRecordStreamsArePinned) {
  // A genuinely branching topology: balanced binary tree of depth 2
  // (7 nodes, 4 receivers).  SS/SS+RT/HS pinned in PR 4; SS+ER/SS+RTR
  // pinned in PR 5 (without removals they replay SS/SS+RT bit-for-bit --
  // see kMultiHopGolden).
  constexpr GoldenEntry kTreeGolden[] = {
      {ProtocolKind::kSS, 0x398cd857f28012f5ULL},
      {ProtocolKind::kSSER, 0x398cd857f28012f5ULL},
      {ProtocolKind::kSSRT, 0x16122c3c8a08afebULL},
      {ProtocolKind::kSSRTR, 0x16122c3c8a08afebULL},
      {ProtocolKind::kHS, 0xc5fc6d8b5c262977ULL},
  };
  const analytic::TreeParams params =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 2);
  for (const GoldenEntry& entry : kTreeGolden) {
    const std::uint64_t actual = tree_digest(entry.kind, params);
    EXPECT_EQ(actual, entry.digest)
        << "fan-out tree " << to_string(entry.kind)
        << " trace digest moved; actual " << hex(actual);
  }
}

TEST(GoldenTrace, LeafChurnRecordStreamsArePinned) {
  // The membership machinery under a pinned seed: a fanout-2 depth-2 tree
  // whose leaves join and leave IGMP-style.  Here the five protocols all
  // genuinely differ (prunes exercise each one's removal semantics), so
  // five distinct digests.  Pinned in PR 5.
  constexpr GoldenEntry kChurnGolden[] = {
      {ProtocolKind::kSS, 0x32f2444f130b1f46ULL},
      {ProtocolKind::kSSER, 0x7c8a56c25b35a20aULL},
      {ProtocolKind::kSSRT, 0x97302a018c6111daULL},
      {ProtocolKind::kSSRTR, 0xd822b1ee59d1e9f2ULL},
      {ProtocolKind::kHS, 0xc44152476a608295ULL},
  };
  const analytic::TreeParams params =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 2);
  for (const GoldenEntry& entry : kChurnGolden) {
    sim::TraceLog log(1 << 20);
    protocols::TreeSimOptions options;
    options.seed = 2024;
    options.duration = 300.0;
    options.trace = &log;
    options.churn.leaf_lifetime = 30.0;
    options.churn.rejoin_rate = 1.0 / 15.0;
    const protocols::TreeSimResult result =
        protocols::run_tree(entry.kind, params, options);
    EXPECT_GT(result.churn.leaves, 0u) << to_string(entry.kind);
    EXPECT_LT(log.total_recorded(), log.capacity())
        << "trace overflowed; the digest would silently cover a suffix only";
    const std::uint64_t actual = digest_of(log);
    EXPECT_EQ(actual, entry.digest)
        << "leaf-churn " << to_string(entry.kind)
        << " trace digest moved; actual " << hex(actual);
  }
}

TEST(GoldenTrace, WheelBackendReproducesEveryPinnedDigest) {
  // The backend-equivalence contract at golden-trace scale: the timing
  // wheel must replay the SAME pinned constants as the heap backend --
  // single-hop, chain and fan-out tree alike.  A digest that moves here
  // but not in the heap tests means the wheel reordered events.
  for (const GoldenEntry& entry : kSingleHopGolden) {
    const std::uint64_t actual =
        single_hop_digest(entry.kind, sim::EventQueueBackend::kWheel);
    EXPECT_EQ(actual, entry.digest)
        << "single-hop " << to_string(entry.kind)
        << " diverged on the wheel backend; actual " << hex(actual);
  }
  for (const GoldenEntry& entry : kMultiHopGolden) {
    const std::uint64_t actual =
        multi_hop_digest(entry.kind, sim::EventQueueBackend::kWheel);
    EXPECT_EQ(actual, entry.digest)
        << "multi-hop " << to_string(entry.kind)
        << " diverged on the wheel backend; actual " << hex(actual);
  }
  const analytic::TreeParams tree =
      analytic::TreeParams::balanced(MultiHopParams{}, 2, 2);
  constexpr GoldenEntry kTreeGolden[] = {
      {ProtocolKind::kSS, 0x398cd857f28012f5ULL},
      {ProtocolKind::kSSER, 0x398cd857f28012f5ULL},
      {ProtocolKind::kSSRT, 0x16122c3c8a08afebULL},
      {ProtocolKind::kSSRTR, 0x16122c3c8a08afebULL},
      {ProtocolKind::kHS, 0xc5fc6d8b5c262977ULL},
  };
  for (const GoldenEntry& entry : kTreeGolden) {
    const std::uint64_t actual =
        tree_digest(entry.kind, tree, sim::EventQueueBackend::kWheel);
    EXPECT_EQ(actual, entry.digest)
        << "fan-out tree " << to_string(entry.kind)
        << " diverged on the wheel backend; actual " << hex(actual);
  }
}

// ------------------------------------------------- farm metric digests --

/// FNV-1a over the farm's per-session metrics stream, every double as
/// IEEE-754 bits in global session order.  The farm analogue of the trace
/// digests above: any change in per-session RNG keying, event ordering,
/// shard reduction order or metric arithmetic moves it.
std::uint64_t farm_digest_of(const std::vector<Metrics>& sessions) {
  TraceDigest digest;
  for (const Metrics& m : sessions) {
    for (const double v :
         {m.inconsistency, m.message_rate, m.raw_message_rate,
          m.session_length, m.breakdown.trigger, m.breakdown.refresh,
          m.breakdown.explicit_removal, m.breakdown.reliable_trigger,
          m.breakdown.reliable_removal}) {
      const auto bits = std::bit_cast<std::uint64_t>(v);
      digest.add_bytes(&bits, sizeof(bits));
    }
  }
  return digest.value();
}

/// Pin conditions: 60 sessions, multi-shard (16) so the digest also locks
/// the shard decomposition and reduce order, single worker thread (the
/// farm is bit-identical at any thread count -- locked elsewhere).
exp::SessionFarmOptions farm_pin_options(sim::EventQueueBackend backend) {
  exp::SessionFarmOptions options;
  options.event_queue = backend;
  options.seed = 2024;
  options.sessions = 60;
  options.arrival_rate = 6.0;
  options.session_lifetime = 15.0;
  options.threads = 1;
  options.shard_size = 16;
  options.keep_per_session = true;
  return options;
}

TEST(GoldenTrace, SingleHopFarmMetricStreamIsPinned) {
  for (const sim::EventQueueBackend backend :
       {sim::EventQueueBackend::kHeap, sim::EventQueueBackend::kWheel}) {
    const exp::SessionFarmResult result =
        exp::run_session_farm(ProtocolKind::kSS, SingleHopParams::kazaa_defaults(),
                              farm_pin_options(backend));
    const std::uint64_t actual = farm_digest_of(result.per_session);
    EXPECT_EQ(actual, 0xaad070c3903a7241ULL)
        << "single-hop farm metric digest moved; actual " << hex(actual);
  }
}

TEST(GoldenTrace, ChainFarmMetricStreamIsPinned) {
  MultiHopParams params;
  params.hops = 3;
  for (const sim::EventQueueBackend backend :
       {sim::EventQueueBackend::kHeap, sim::EventQueueBackend::kWheel}) {
    const exp::SessionFarmResult result = exp::run_session_farm(
        ProtocolKind::kSSRT, params, farm_pin_options(backend));
    const std::uint64_t actual = farm_digest_of(result.per_session);
    EXPECT_EQ(actual, 0xfe1367601978d13cULL)
        << "chain farm metric digest moved; actual " << hex(actual);
  }
}

TEST(GoldenTrace, TreeFarmMetricStreamIsPinned) {
  MultiHopParams base;
  base.hops = 2;
  const analytic::TreeParams tree = analytic::TreeParams::balanced(base, 2, 2);
  for (const sim::EventQueueBackend backend :
       {sim::EventQueueBackend::kHeap, sim::EventQueueBackend::kWheel}) {
    const exp::SessionFarmResult result =
        exp::run_session_farm(ProtocolKind::kHS, tree, farm_pin_options(backend));
    const std::uint64_t actual = farm_digest_of(result.per_session);
    EXPECT_EQ(actual, 0x4b3eace907484c39ULL)
        << "tree farm metric digest moved; actual " << hex(actual);
  }
}

TEST(GoldenTrace, DigestIsReproducibleWithinProcess) {
  // The digest itself must be a pure function of the run.
  EXPECT_EQ(single_hop_digest(ProtocolKind::kSS),
            single_hop_digest(ProtocolKind::kSS));
  EXPECT_EQ(multi_hop_digest(ProtocolKind::kSSRT),
            multi_hop_digest(ProtocolKind::kSSRT));
}

TEST(GoldenTrace, DigestIsSensitiveToEveryField) {
  sim::TraceRecord a{1.0, sim::TraceCategory::kSend, "fwd TRIGGER"};
  TraceDigest base;
  base.add_record(a);

  TraceDigest time_moved;
  time_moved.add_record({1.0000000001, a.category, a.detail});
  EXPECT_NE(base.value(), time_moved.value());

  TraceDigest category_moved;
  category_moved.add_record({a.time, sim::TraceCategory::kDeliver, a.detail});
  EXPECT_NE(base.value(), category_moved.value());

  TraceDigest detail_moved;
  detail_moved.add_record({a.time, a.category, "fwd REFRESH"});
  EXPECT_NE(base.value(), detail_moved.value());
}

}  // namespace
}  // namespace sigcomp
