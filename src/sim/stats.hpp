// Statistics utilities for simulation output analysis: time-weighted
// averages (for the inconsistency ratio), streaming moments (Welford) and
// Student-t confidence intervals across replications.
#pragma once

#include <cstddef>

#include "sim/event_queue.hpp"

namespace sigcomp::sim {

/// Integrates a piecewise-constant signal over time; used to measure the
/// fraction of time a predicate (e.g. "states are inconsistent") holds.
class TimeWeightedValue {
 public:
  /// Starts integrating at time `start` with signal value `initial`.
  explicit TimeWeightedValue(Time start = 0.0, double initial = 0.0) noexcept
      : last_time_(start), value_(initial) {}

  /// Records that the signal takes value `v` from time `now` onward.
  /// `now` must be non-decreasing.
  void set(Time now, double v);

  /// Current signal value.
  [[nodiscard]] double value() const noexcept { return value_; }

  /// Integral of the signal from start to `now`.
  [[nodiscard]] double integral(Time now) const;

  /// Time-average of the signal over [start, now]; 0 for an empty window.
  [[nodiscard]] double mean(Time now) const;

 private:
  Time start_time_ = 0.0;
  Time last_time_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
  bool started_ = false;
};

/// Welford streaming mean/variance accumulator.
class RunningStats {
 public:
  /// Accumulates one sample.
  void add(double x) noexcept;

  /// Number of accumulated samples.
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Sample mean; 0 when empty.
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  /// Square root of variance().
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean; 0 when fewer than two samples.
  [[nodiscard]] double std_error() const noexcept;
  /// Smallest accumulated sample (0 when empty).
  [[nodiscard]] double min() const noexcept { return min_; }
  /// Largest accumulated sample (0 when empty).
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided 95% Student-t critical value for `df` degrees of freedom
/// (tabulated for small df, 1.96 asymptotically).
[[nodiscard]] double student_t_95(std::size_t df) noexcept;

/// Mean with a symmetric 95% confidence half-width.
struct ConfidenceInterval {
  double mean = 0.0;        ///< sample mean
  double half_width = 0.0;  ///< 95% half-width around the mean
  std::size_t samples = 0;  ///< samples the interval is based on

  /// mean - half_width.
  [[nodiscard]] double lower() const noexcept { return mean - half_width; }
  /// mean + half_width.
  [[nodiscard]] double upper() const noexcept { return mean + half_width; }
  /// True when `v` lies inside the interval.
  [[nodiscard]] bool contains(double v) const noexcept {
    return v >= lower() && v <= upper();
  }
};

/// 95% confidence interval of the mean of the accumulated samples.
[[nodiscard]] ConfidenceInterval confidence_interval_95(const RunningStats& s) noexcept;

}  // namespace sigcomp::sim
