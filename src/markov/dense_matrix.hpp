// Dense row-major matrix of doubles.
//
// This is the numerical workhorse underneath the Markov-chain substrate.  The
// chains in this project are small (tens of states for the single-hop model,
// O(K) states for the multi-hop model), so a simple dense representation is
// both sufficient and the most robust choice.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

namespace sigcomp::markov {

/// Dense row-major matrix with bounds-checked access.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same length.  Throws std::invalid_argument on ragged input.
  DenseMatrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  [[nodiscard]] static DenseMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }

  /// Bounds-checked element access.  Throws std::out_of_range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] const double& at(std::size_t r, std::size_t c) const;

  /// Unchecked element access for hot loops.
  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const double& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Sum of entries in row r.
  [[nodiscard]] double row_sum(std::size_t r) const;

  /// Matrix-vector product (this * x).  Throws on dimension mismatch.
  [[nodiscard]] std::vector<double> multiply(const std::vector<double>& x) const;

  /// Vector-matrix product (x^T * this).  Throws on dimension mismatch.
  [[nodiscard]] std::vector<double> left_multiply(const std::vector<double>& x) const;

  /// Matrix-matrix product.  Throws on dimension mismatch.
  [[nodiscard]] DenseMatrix multiply(const DenseMatrix& other) const;

  /// Returns the transposed matrix.
  [[nodiscard]] DenseMatrix transposed() const;

  /// Element-wise scaling in place.
  void scale(double factor) noexcept;

  /// this += other.  Throws on dimension mismatch.
  void add(const DenseMatrix& other);

  /// Maximum absolute entry (infinity norm of the flattened matrix).
  [[nodiscard]] double max_abs() const noexcept;

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Pretty-printer used by tests and debug dumps.
std::ostream& operator<<(std::ostream& os, const DenseMatrix& m);

}  // namespace sigcomp::markov
