// Pending-event set of the discrete-event simulator.
//
// The hot path of every simulation run, so the representation is pooled and
// allocation-free in steady state:
//
//  * Callbacks are stored in EventCallback, a move-only type-erased functor
//    with inline small-buffer storage (no heap allocation for captures up to
//    kInlineCapacity bytes; every callback in this codebase fits).
//  * Each pending event occupies a slot in a pooled vector; freed slots are
//    recycled through an intrusive free list, so steady-state schedule/
//    cancel/pop churn performs zero allocations and zero hash lookups
//    (cancellation is an O(1) generation check on the slot).
//  * The ready order is a 4-ary implicit min-heap over (time, seq): ties in
//    time break by insertion order so simultaneous events execute
//    deterministically in schedule order (important for reproducible runs).
//    The pop sequence is the unique (time, seq)-sorted order of live events,
//    independent of the internal heap shape.
//  * Cancelling frees the slot immediately and leaves a dead husk in the
//    heap; husks are reclaimed when they surface, or -- so cancel-heavy
//    workloads (refresh/backoff timer churn) cannot accumulate unbounded
//    garbage -- by compacting the heap whenever dead husks outnumber live
//    events.
#pragma once

#include <cstdint>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace sigcomp::sim {

/// Simulation time in seconds.
using Time = double;

/// Move-only type-erased `void()` callable with inline small-buffer storage.
///
/// Replaces std::function on the event hot path: a callable whose size is at
/// most kInlineCapacity (and nothrow-move-constructible) lives entirely
/// inside the EventCallback object; larger callables fall back to the heap
/// (counted, so tests can assert the hot path never allocates).
class EventCallback {
 public:
  /// Inline storage size: covers every capture in this codebase (the
  /// largest is a channel delivery closure: a pointer plus a Message).
  static constexpr std::size_t kInlineCapacity = 48;

  /// Empty callback (boolean-false; must not be invoked).
  EventCallback() noexcept = default;

  /// Wraps any `void()` callable.  Implicit so schedule call sites read
  /// like the std::function-based API it replaced.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                          // std::function at schedule call sites
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vtable_ = inline_vtable<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ++heap_allocation_count();
      vtable_ = heap_vtable<Fn>();
    }
  }

  /// Move: relocates the stored callable; `other` is left empty.
  EventCallback(EventCallback&& other) noexcept : vtable_(other.vtable_) {
    if (vtable_ != nullptr) {
      vtable_->relocate(storage_, other.storage_);
      other.vtable_ = nullptr;
    }
  }

  /// Move assignment: destroys the current callable first.
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      vtable_ = other.vtable_;
      if (vtable_ != nullptr) {
        vtable_->relocate(storage_, other.storage_);
        other.vtable_ = nullptr;
      }
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;             ///< move-only
  EventCallback& operator=(const EventCallback&) = delete;  ///< move-only

  /// Destroys the stored callable, if any.
  ~EventCallback() { reset(); }

  /// Invokes the stored callable (undefined when empty; the queue never
  /// stores an empty callback).
  void operator()() { vtable_->invoke(storage_); }

  /// True when a callable is stored.
  [[nodiscard]] explicit operator bool() const noexcept {
    return vtable_ != nullptr;
  }

  /// Destroys the stored callable, leaving the callback empty.
  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(storage_);
      vtable_ = nullptr;
    }
  }

  /// Number of callbacks this thread ever spilled to the heap (capture too
  /// large for the inline buffer).  Tests assert it stays flat across
  /// simulation workloads -- the zero-allocation contract of the event core.
  [[nodiscard]] static std::uint64_t heap_allocations() noexcept {
    return heap_allocation_count();
  }

 private:
  struct VTable {
    void (*invoke)(void* ctx);
    /// Move-constructs the callable at `dst` from `src` and destroys `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* ctx) noexcept;
  };

  template <typename Fn>
  static Fn* stored(void* ctx) noexcept {
    return std::launder(reinterpret_cast<Fn*>(ctx));
  }

  template <typename Fn>
  static const VTable* inline_vtable() noexcept {
    static constexpr VTable table{
        [](void* ctx) { (*stored<Fn>(ctx))(); },
        [](void* dst, void* src) noexcept {
          Fn* from = stored<Fn>(src);
          ::new (dst) Fn(std::move(*from));
          from->~Fn();
        },
        [](void* ctx) noexcept { stored<Fn>(ctx)->~Fn(); }};
    return &table;
  }

  template <typename Fn>
  static const VTable* heap_vtable() noexcept {
    static constexpr VTable table{
        [](void* ctx) { (**stored<Fn*>(ctx))(); },
        [](void* dst, void* src) noexcept {
          ::new (dst) Fn*(*stored<Fn*>(src));
        },
        [](void* ctx) noexcept { delete *stored<Fn*>(ctx); }};
    return &table;
  }

  static std::uint64_t& heap_allocation_count() noexcept {
    thread_local std::uint64_t count = 0;
    return count;
  }

  const VTable* vtable_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
};

/// Opaque handle to a scheduled event; usable for cancellation.  `value` is
/// the event's globally unique sequence number (never reused), `slot` the
/// pool slot it occupied -- together they make cancellation an O(1)
/// generation check instead of a hash lookup.
struct EventId {
  std::uint64_t value = 0;  ///< unique sequence number; 0 = invalid
  std::uint32_t slot = 0;   ///< pool slot the event occupies
  friend bool operator==(const EventId&,
                         const EventId&) = default;  ///< field-wise equality
};

/// One expiry extracted by a batched drain (EventQueue::drain_due /
/// TimingWheelQueue::drain_due): the scheduled time plus the (seq, slot)
/// identity needed to claim it (take_drained) or put it back
/// (requeue_drained).  Shared by both event-queue backends so slice-driving
/// callers (Simulator::run_slice) are backend-agnostic.
struct DrainedEvent {
  Time time = 0.0;        ///< scheduled execution time
  std::uint64_t seq = 0;  ///< the event's unique sequence number
  std::uint32_t slot = 0;  ///< pool slot the event occupies
};

/// Min-ordered pending set of (time, seq) -> callback, pooled as above.
class EventQueue {
 public:
  /// Adds an event; `time` must be finite and `action` non-empty.  Returns
  /// a cancellation handle.  Amortized O(log n); allocation-free once the
  /// pool and heap have grown to the workload's high-water mark.
  EventId push(Time time, EventCallback action);

  /// Cancels a pending event in O(1); returns false if already
  /// executed/cancelled.  The slot (and its callback) are reclaimed
  /// immediately; only a {time, seq} husk stays in the heap until it
  /// surfaces or compaction removes it.
  bool cancel(EventId id);

  /// True when no live event remains.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live (pending, uncancelled) events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Entries physically held by the heap: live events plus cancelled husks
  /// not yet reclaimed.  Compaction keeps this below
  /// max(2 * size(), compaction threshold); tests assert the bound.
  [[nodiscard]] std::size_t heap_entries() const noexcept {
    return heap_.size();
  }

  /// Slots in the pool (the high-water mark of concurrently pending
  /// events); free-list recycling keeps this flat under schedule/cancel
  /// churn -- tests assert no growth across millions of cycles.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.size();
  }

  /// Time of the earliest live event.  Throws std::logic_error when empty.
  [[nodiscard]] Time next_time() const;

  /// An event handed back by pop().
  struct PoppedEvent {
    Time time;             ///< scheduled execution time
    EventCallback action;  ///< the callback to invoke
  };
  /// Pops and returns the earliest live event.  Throws when empty.
  PoppedEvent pop();

  /// Batched expiry extraction: appends every live event with time <=
  /// `horizon` to `out` in exact pop order (time, then insertion seq) and
  /// detaches them from the heap in one O(heap) partition pass (dead husks
  /// are shed for free, and the remainder is re-heapified bottom-up).  One
  /// drain per dispatch batch amortizes the per-pop sift on expiry storms.
  /// Drained events stay LIVE -- their slots and callbacks are retained and
  /// cancel() still works on them -- but they are invisible to
  /// pop()/next_time()/peek_ready() until requeued; the caller must either
  /// take_drained() or requeue_drained() every drained event before
  /// resuming pop-driven execution.
  void drain_due(Time horizon, std::vector<DrainedEvent>& out);

  /// Claims a drained event's callback: moves it into `action`, frees the
  /// slot and returns true.  Returns false (leaving `action` untouched)
  /// when the event was cancelled after the drain -- the generation check
  /// fails -- in which case the caller simply skips it.
  bool take_drained(const DrainedEvent& event, EventCallback& action);

  /// Puts a drained (not yet taken) event back into the pending heap, as if
  /// it had never been drained.  A no-op when the event was cancelled after
  /// the drain.
  void requeue_drained(const DrainedEvent& event);

  /// Time of the earliest event still in the heap (drained events
  /// excluded): the non-throwing next_time() that slice dispatch uses to
  /// merge freshly scheduled events into a drained batch.  Returns false
  /// when no undrained live event remains.
  [[nodiscard]] bool peek_ready(Time& time) const;

  /// Bounded peek for slice-horizon negotiation: writes the earliest
  /// pending time and returns true only when that time is <= `bound`;
  /// returns false when the queue is empty or provably idle past the bound.
  /// On the heap backend this is peek_ready plus the comparison (the peek
  /// is already O(1)); the wheel backend uses the bound to skip rotations.
  /// Exact by contract: a false return guarantees no pending event at or
  /// before `bound` -- the cross-shard fabric's epoch-barrier computation
  /// (a running min over every shard) depends on it.
  [[nodiscard]] bool peek_ready_within(Time bound, Time& time) const;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  /// Heap entries pack (seq, slot) into one word: 38 bits of sequence
  /// (~2.7e11 events per queue lifetime) and 26 bits of slot index (~6.7e7
  /// concurrently pending events).  16-byte entries put four per cache
  /// line, which is what the pop path is bound by at scale-harness depths.
  static constexpr unsigned kSlotBits = 26;
  static constexpr std::uint64_t kMaxSlots = 1ULL << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ULL << (64 - kSlotBits);

  struct Slot {
    EventCallback action;
    std::uint64_t seq = 0;  ///< occupying event's seq; 0 = free
    std::uint32_t next_free = kNoSlot;
    bool drained = false;  ///< extracted by drain_due; no husk in the heap
  };

  struct HeapEntry {
    Time time;
    std::uint64_t packed;  ///< (seq << kSlotBits) | slot

    [[nodiscard]] std::uint64_t seq() const noexcept {
      return packed >> kSlotBits;
    }
    [[nodiscard]] std::uint32_t slot() const noexcept {
      return static_cast<std::uint32_t>(packed & (kMaxSlots - 1));
    }
  };

  /// Heap order: earlier time first, then insertion (seq) order.  Seqs are
  /// unique, so comparing the packed words compares the seqs.
  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.packed < b.packed;
  }

  [[nodiscard]] bool entry_live(const HeapEntry& e) const noexcept {
    return slots_[e.slot()].seq == e.seq();
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  // The heap maintenance helpers are const because they touch only the
  // mutable heap vector: next_time() must be able to shed dead husks.
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) const noexcept;
  void heap_remove_front() const noexcept;
  void drop_dead() const noexcept;
  void compact();

  mutable std::vector<HeapEntry> heap_;  ///< 4-ary implicit min-heap
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  /// Live events currently drained out of the heap (awaiting take/requeue).
  /// Needed so cancel()'s compaction trigger compares husks against the
  /// events actually IN the heap (live_ - drained_live_).
  std::size_t drained_live_ = 0;
};

}  // namespace sigcomp::sim
