#include "markov/uniformization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "markov/dtmc.hpp"

namespace sigcomp::markov {

std::vector<double> transient_distribution(const Ctmc& chain,
                                           const std::vector<double>& p0, double t,
                                           double eps) {
  const std::size_t n = chain.num_states();
  if (p0.size() != n) {
    throw std::invalid_argument("transient_distribution: p0 dimension mismatch");
  }
  double mass = 0.0;
  for (double v : p0) {
    if (v < -1e-12) {
      throw std::invalid_argument("transient_distribution: negative probability");
    }
    mass += v;
  }
  if (std::abs(mass - 1.0) > 1e-9) {
    throw std::invalid_argument("transient_distribution: p0 must sum to 1");
  }
  if (t < 0.0 || !std::isfinite(t)) {
    throw std::invalid_argument("transient_distribution: time must be finite and >= 0");
  }
  if (t == 0.0) return p0;

  double max_exit = 0.0;
  for (StateId s = 0; s < n; ++s) max_exit = std::max(max_exit, chain.exit_rate(s));
  if (max_exit == 0.0) return p0;  // no transitions at all

  // Slightly inflate Lambda to keep the uniformized chain aperiodic.
  const double lambda = max_exit * 1.02;
  const DenseMatrix p = uniformized_matrix(chain, lambda);

  // p(t) = sum_k Poisson(k; lambda t) * p0 P^k, truncated when the remaining
  // Poisson tail is below eps.
  const double lt = lambda * t;
  std::vector<double> term = p0;      // p0 P^k
  std::vector<double> result(n, 0.0);
  double log_poisson = -lt;           // log Poisson(0)
  double cumulative = 0.0;
  // Upper bound on terms: mean + 10 sqrt(mean) + 64 comfortably covers eps.
  const std::size_t max_k =
      static_cast<std::size_t>(lt + 10.0 * std::sqrt(lt) + 64.0);
  for (std::size_t k = 0;; ++k) {
    const double w = std::exp(log_poisson);
    for (std::size_t i = 0; i < n; ++i) result[i] += w * term[i];
    cumulative += w;
    if (1.0 - cumulative <= eps || k >= max_k) break;
    term = p.left_multiply(term);
    log_poisson += std::log(lt) - std::log(static_cast<double>(k + 1));
  }
  // Renormalize the truncation remainder.
  double total = 0.0;
  for (double v : result) total += v;
  if (total > 0.0) {
    for (double& v : result) v /= total;
  }
  return result;
}

double transient_probability(const Ctmc& chain, StateId source, StateId target,
                             double t, double eps) {
  if (source >= chain.num_states() || target >= chain.num_states()) {
    throw std::out_of_range("transient_probability: state id out of range");
  }
  std::vector<double> p0(chain.num_states(), 0.0);
  p0[source] = 1.0;
  return transient_distribution(chain, p0, t, eps)[target];
}

}  // namespace sigcomp::markov
