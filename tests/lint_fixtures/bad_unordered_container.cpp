// Fixture: unordered containers in library code, including the sharp end
// -- iterating one (hash order is vendor-specific).
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Registry {
  std::unordered_map<std::string, int> by_name_;        // LINT[unordered-container]
  std::unordered_set<int> seen_;                        // LINT[unordered-container]
  std::vector<std::unordered_map<int, double>> rates_;  // LINT[unordered-container]

  double sum() const {
    double total = 0.0;
    for (const auto& [key, value] : by_name_) {  // LINT[unordered-iteration]
      total += value;
    }
    for (auto it = seen_.begin(); it != seen_.end(); ++it) {  // LINT[unordered-iteration]
      total += *it;
    }
    for (const auto& [to, r] : rates_[0]) {  // LINT[unordered-iteration]
      total += r;
    }
    return total;
  }

  // Must not fire: the find()/end() lookup-sentinel idiom is not iteration.
  bool contains(const std::string& name) const {
    return by_name_.find(name) != by_name_.end();
  }
};
