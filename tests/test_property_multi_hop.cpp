// Parameterized property tests for the multi-hop model across the
// (protocol x hops x loss) grid.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "analytic/multi_hop.hpp"

namespace sigcomp::analytic {
namespace {

using Grid = std::tuple<ProtocolKind, std::size_t /*hops*/, double /*loss*/>;

class MultiHopGrid : public ::testing::TestWithParam<Grid> {
 protected:
  static MultiHopParams params() {
    const auto& [kind, hops, loss] = GetParam();
    (void)kind;
    MultiHopParams p = MultiHopParams::reservation_defaults();
    p.hops = hops;
    p.loss = loss;
    p.false_signal_rate = std::pow(loss, 4.0);
    return p;
  }
  static ProtocolKind kind() { return std::get<0>(GetParam()); }
};

TEST_P(MultiHopGrid, ProbabilityMassIsConserved) {
  const MultiHopModel model(kind(), params());
  double total = model.recovery_probability();
  for (std::size_t k = 0; k <= params().hops; ++k) {
    total += model.stationary(k, 0);
    if (k < params().hops) total += model.stationary(k, 1);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(MultiHopGrid, InconsistencyIsAProbability) {
  const MultiHopModel model(kind(), params());
  EXPECT_GT(model.inconsistency(), 0.0);
  EXPECT_LT(model.inconsistency(), 1.0);
}

TEST_P(MultiHopGrid, HopInconsistencyIsMonotoneInHop) {
  const MultiHopModel model(kind(), params());
  for (std::size_t hop = 2; hop <= params().hops; ++hop) {
    EXPECT_GE(model.hop_inconsistency(hop),
              model.hop_inconsistency(hop - 1) - 1e-12)
        << "hop " << hop;
  }
}

TEST_P(MultiHopGrid, HopInconsistencyBoundedByTotal) {
  const MultiHopModel model(kind(), params());
  for (std::size_t hop = 1; hop <= params().hops; ++hop) {
    EXPECT_LE(model.hop_inconsistency(hop), model.inconsistency() + 1e-12);
  }
}

TEST_P(MultiHopGrid, MessageRatesAreFiniteAndNonNegative) {
  const MultiHopModel model(kind(), params());
  const MessageRateBreakdown b = model.message_rates();
  for (const double rate : {b.trigger, b.refresh, b.explicit_removal,
                            b.reliable_trigger, b.reliable_removal}) {
    EXPECT_TRUE(std::isfinite(rate));
    EXPECT_GE(rate, 0.0);
  }
  EXPECT_GT(b.total(), 0.0);
}

TEST_P(MultiHopGrid, ReliableTriggersNeverHurtConsistency) {
  if (kind() != ProtocolKind::kSS) GTEST_SKIP();
  const double ss = MultiHopModel(ProtocolKind::kSS, params()).inconsistency();
  const double ssrt = MultiHopModel(ProtocolKind::kSSRT, params()).inconsistency();
  EXPECT_LE(ssrt, ss * (1.0 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiHopGrid,
    ::testing::Combine(::testing::ValuesIn(kMultiHopProtocols),
                       ::testing::Values(std::size_t{1}, std::size_t{4},
                                         std::size_t{12}, std::size_t{20}),
                       ::testing::Values(0.005, 0.02, 0.1)),
    [](const auto& param_info) {
      std::string name{to_string(std::get<0>(param_info.param))};
      for (char& c : name) {
        if (c == '+') c = '_';
      }
      name += "_K" + std::to_string(std::get<1>(param_info.param));
      name += "_loss" + std::to_string(int(std::get<2>(param_info.param) * 1000));
      return name;
    });

class HopMonotonicity : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(HopMonotonicity, InconsistencyGrowsWithChainLength) {
  double previous = 0.0;
  for (const std::size_t hops : {1u, 2u, 4u, 8u, 16u}) {
    MultiHopParams p = MultiHopParams::reservation_defaults();
    p.hops = hops;
    const double inconsistency = MultiHopModel(GetParam(), p).inconsistency();
    EXPECT_GT(inconsistency, previous) << "hops " << hops;
    previous = inconsistency;
  }
}

TEST_P(HopMonotonicity, MessageRateGrowsWithChainLength) {
  double previous = 0.0;
  for (const std::size_t hops : {1u, 2u, 4u, 8u, 16u}) {
    MultiHopParams p = MultiHopParams::reservation_defaults();
    p.hops = hops;
    const double rate = MultiHopModel(GetParam(), p).metrics().raw_message_rate;
    EXPECT_GT(rate, previous) << "hops " << hops;
    previous = rate;
  }
}

INSTANTIATE_TEST_SUITE_P(MultiHopProtocols, HopMonotonicity,
                         ::testing::ValuesIn(kMultiHopProtocols),
                         [](const auto& param_info) {
                           std::string name{to_string(param_info.param)};
                           for (char& c : name) {
                             if (c == '+') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sigcomp::analytic
