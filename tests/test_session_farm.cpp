// Tests of the many-session scale harness (exp/session_farm).
#include "exp/session_farm.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/parallel.hpp"
#include "protocols/single_hop_run.hpp"

namespace sigcomp::exp {
namespace {

SessionFarmOptions small_farm(std::size_t sessions) {
  SessionFarmOptions options;
  options.seed = 11;
  options.sessions = sessions;
  options.arrival_rate = static_cast<double>(sessions) / 20.0;
  options.session_lifetime = 30.0;
  options.threads = 1;
  return options;
}

TEST(SessionFarm, CompletesEverySession) {
  const SessionFarmResult result = run_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), small_farm(300));
  EXPECT_EQ(result.sessions, 300u);
  EXPECT_EQ(result.summary.replications, 300u);
  EXPECT_GT(result.messages, 0u);
  EXPECT_GT(result.events_executed, 0u);
  EXPECT_GT(result.horizon, 0.0);
  EXPECT_GT(result.peak_sessions_in_flight, 0u);
  EXPECT_LE(result.peak_sessions_in_flight, 300u);
}

TEST(SessionFarm, AllFiveProtocolsRun) {
  for (const ProtocolKind kind : kAllProtocols) {
    const SessionFarmResult result = run_session_farm(
        kind, SingleHopParams::kazaa_defaults(), small_farm(100));
    EXPECT_EQ(result.sessions, 100u) << to_string(kind);
    EXPECT_GE(result.summary.mean.inconsistency, 0.0) << to_string(kind);
    EXPECT_LE(result.summary.mean.inconsistency, 1.0) << to_string(kind);
    EXPECT_GT(result.summary.mean.session_length, 0.0) << to_string(kind);
  }
}

TEST(SessionFarm, BitIdenticalAcrossThreadCounts) {
  SessionFarmOptions base = small_farm(400);
  base.shard_size = 64;
  const SessionFarmResult serial = run_session_farm(
      ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(), base);
  for (const std::size_t threads : {2u, 8u}) {
    SessionFarmOptions opt = base;
    opt.threads = threads;
    const SessionFarmResult parallel = run_session_farm(
        ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(), opt);
    EXPECT_EQ(serial.summary.mean.inconsistency,
              parallel.summary.mean.inconsistency);
    EXPECT_EQ(serial.summary.mean.message_rate,
              parallel.summary.mean.message_rate);
    EXPECT_EQ(serial.summary.inconsistency.half_width,
              parallel.summary.inconsistency.half_width);
    EXPECT_EQ(serial.messages, parallel.messages);
    EXPECT_EQ(serial.events_executed, parallel.events_executed);
    EXPECT_EQ(serial.horizon, parallel.horizon);
    EXPECT_EQ(serial.receiver_timeouts, parallel.receiver_timeouts);
  }
}

TEST(SessionFarm, BitIdenticalAcrossEventQueueBackends) {
  // The determinism contract extends to the event-core backend: heap and
  // wheel farms must agree on every aggregate, down to the event count.
  SessionFarmOptions base = small_farm(400);
  base.shard_size = 64;
  base.event_queue = sim::EventQueueBackend::kHeap;
  const SessionFarmResult heap = run_session_farm(
      ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(), base);
  SessionFarmOptions wheel_opt = base;
  wheel_opt.event_queue = sim::EventQueueBackend::kWheel;
  const SessionFarmResult wheel = run_session_farm(
      ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(), wheel_opt);
  EXPECT_EQ(heap.summary.mean.inconsistency, wheel.summary.mean.inconsistency);
  EXPECT_EQ(heap.summary.mean.message_rate, wheel.summary.mean.message_rate);
  EXPECT_EQ(heap.summary.inconsistency.half_width,
            wheel.summary.inconsistency.half_width);
  EXPECT_EQ(heap.messages, wheel.messages);
  EXPECT_EQ(heap.events_executed, wheel.events_executed);
  EXPECT_EQ(heap.horizon, wheel.horizon);
  EXPECT_EQ(heap.receiver_timeouts, wheel.receiver_timeouts);
  EXPECT_EQ(heap.peak_sessions_in_flight, wheel.peak_sessions_in_flight);
}

TEST(SessionFarm, BitIdenticalAcrossShardSizes) {
  // Stronger than thread independence: per-session randomness is keyed to
  // the global session index, so even the shard decomposition cannot move
  // a single output bit of the per-session aggregates.
  SessionFarmOptions base = small_farm(400);
  base.shard_size = 400;  // one shard
  const SessionFarmResult one_shard = run_session_farm(
      ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), base);
  for (const std::size_t shard_size : {1u, 7u, 64u, 399u}) {
    SessionFarmOptions opt = base;
    opt.shard_size = shard_size;
    const SessionFarmResult sharded = run_session_farm(
        ProtocolKind::kSS, SingleHopParams::kazaa_defaults(), opt);
    EXPECT_EQ(one_shard.summary.mean.inconsistency,
              sharded.summary.mean.inconsistency)
        << "shard_size " << shard_size;
    EXPECT_EQ(one_shard.summary.mean.message_rate,
              sharded.summary.mean.message_rate)
        << "shard_size " << shard_size;
    EXPECT_EQ(one_shard.summary.mean.session_length,
              sharded.summary.mean.session_length)
        << "shard_size " << shard_size;
    EXPECT_EQ(one_shard.summary.inconsistency.half_width,
              sharded.summary.inconsistency.half_width)
        << "shard_size " << shard_size;
    EXPECT_EQ(one_shard.messages, sharded.messages)
        << "shard_size " << shard_size;
    EXPECT_EQ(one_shard.receiver_timeouts, sharded.receiver_timeouts)
        << "shard_size " << shard_size;
  }
}

TEST(SessionFarm, SharedEngineMatchesPrivatePool) {
  SessionFarmOptions base = small_farm(200);
  const SessionFarmResult own_pool = run_session_farm(
      ProtocolKind::kSSER, SingleHopParams::kazaa_defaults(), base);
  ParallelSweep engine(4);
  SessionFarmOptions shared = base;
  shared.engine = &engine;
  const SessionFarmResult with_engine = run_session_farm(
      ProtocolKind::kSSER, SingleHopParams::kazaa_defaults(), shared);
  EXPECT_EQ(own_pool.summary.mean.inconsistency,
            with_engine.summary.mean.inconsistency);
  EXPECT_EQ(own_pool.messages, with_engine.messages);
}

TEST(SessionFarm, SoftStateSeesOrphanWindowHardStateDoesNot) {
  // A farm session ends with a graceful removal; soft-state receivers hold
  // orphaned state until timeout only when the removal message is lost, so
  // with losses pure SS (no explicit removal at all -- every session ends
  // by timeout) must be much more inconsistent than SS+RTR/HS.
  SessionFarmOptions options = small_farm(300);
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.loss = 0.05;
  const SessionFarmResult ss =
      run_session_farm(ProtocolKind::kSS, params, options);
  const SessionFarmResult ssrtr =
      run_session_farm(ProtocolKind::kSSRTR, params, options);
  EXPECT_GT(ss.summary.mean.inconsistency,
            ssrtr.summary.mean.inconsistency);
  EXPECT_GT(ss.receiver_timeouts, ssrtr.receiver_timeouts);
}

TEST(SessionFarm, PerSessionMetricsMatchRenewalHarnessScale) {
  // The farm measures the same per-session quantities as the renewal
  // harness (protocols/run_single_hop); with matched lifetimes the mean
  // session length must agree within statistical noise.
  SessionFarmOptions options = small_farm(500);
  options.session_lifetime = 30.0;
  SingleHopParams params = SingleHopParams::kazaa_defaults();
  params.removal_rate = 1.0 / 30.0;
  const SessionFarmResult farm =
      run_session_farm(ProtocolKind::kSSRTR, params, options);
  protocols::SimOptions renewal_options;
  renewal_options.sessions = 500;
  renewal_options.seed = 11;
  const protocols::SimResult renewal =
      protocols::run_single_hop(ProtocolKind::kSSRTR, params, renewal_options);
  EXPECT_NEAR(farm.summary.mean.session_length, renewal.metrics.session_length,
              0.25 * renewal.metrics.session_length);
  EXPECT_NEAR(farm.summary.mean.message_rate, renewal.metrics.message_rate,
              0.25 * renewal.metrics.message_rate);
}

TEST(SessionFarm, MultiHopChainsRunAndTearDown) {
  MultiHopParams params;
  params.hops = 3;
  SessionFarmOptions options = small_farm(100);
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const SessionFarmResult result = run_session_farm(kind, params, options);
    EXPECT_EQ(result.sessions, 100u) << to_string(kind);
    EXPECT_GT(result.messages, 0u) << to_string(kind);
    EXPECT_GE(result.summary.mean.inconsistency, 0.0) << to_string(kind);
    EXPECT_LT(result.summary.mean.inconsistency, 0.5) << to_string(kind);
  }
}

TEST(SessionFarm, MultiHopBitIdenticalAcrossShardSizes) {
  MultiHopParams params;
  params.hops = 2;
  SessionFarmOptions base = small_farm(120);
  base.shard_size = 120;
  const SessionFarmResult one_shard =
      run_session_farm(ProtocolKind::kSSRT, params, base);
  SessionFarmOptions sharded_options = base;
  sharded_options.shard_size = 11;
  const SessionFarmResult sharded =
      run_session_farm(ProtocolKind::kSSRT, params, sharded_options);
  EXPECT_EQ(one_shard.summary.mean.inconsistency,
            sharded.summary.mean.inconsistency);
  EXPECT_EQ(one_shard.messages, sharded.messages);
  EXPECT_EQ(one_shard.receiver_timeouts, sharded.receiver_timeouts);
}

TEST(SessionFarm, ValidatesOptions) {
  const SingleHopParams params = SingleHopParams::kazaa_defaults();
  SessionFarmOptions options = small_farm(10);
  options.sessions = 0;
  EXPECT_THROW((void)run_session_farm(ProtocolKind::kSS, params, options),
               std::invalid_argument);
  options = small_farm(10);
  options.arrival_rate = 0.0;
  EXPECT_THROW((void)run_session_farm(ProtocolKind::kSS, params, options),
               std::invalid_argument);
  options = small_farm(10);
  options.session_lifetime = -1.0;
  EXPECT_THROW((void)run_session_farm(ProtocolKind::kSS, params, options),
               std::invalid_argument);
  options = small_farm(10);
  options.shard_size = 0;
  EXPECT_THROW((void)run_session_farm(ProtocolKind::kSS, params, options),
               std::invalid_argument);
  // Leaf churn prunes trees; a single-hop farm has none to prune.
  options = small_farm(10);
  options.leaf_churn.leaf_lifetime = 30.0;
  EXPECT_THROW((void)run_session_farm(ProtocolKind::kSS, params, options),
               std::invalid_argument);
  // Churn knobs must be sane even for chain/tree farms.
  MultiHopParams chain;
  options = small_farm(10);
  options.leaf_churn.leaf_lifetime = -2.0;
  EXPECT_THROW((void)run_session_farm(ProtocolKind::kSS, chain, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace sigcomp::exp
