#include "markov/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace sigcomp::markov {

StateId Ctmc::add_state(std::string name) {
  if (name.empty()) {
    throw std::invalid_argument("Ctmc::add_state: empty state name");
  }
  if (by_name_.contains(name)) {
    throw std::invalid_argument("Ctmc::add_state: duplicate state name: " + name);
  }
  const StateId id = names_.size();
  by_name_.emplace(name, id);
  names_.push_back(std::move(name));
  rates_.emplace_back();
  return id;
}

void Ctmc::add_rate(StateId from, StateId to, double rate) {
  if (from >= names_.size() || to >= names_.size()) {
    throw std::out_of_range("Ctmc::add_rate: state id out of range");
  }
  if (from == to) {
    throw std::invalid_argument("Ctmc::add_rate: self-loop not allowed");
  }
  if (!std::isfinite(rate) || rate < 0.0) {
    throw std::invalid_argument("Ctmc::add_rate: rate must be finite and >= 0");
  }
  if (rate == 0.0) return;
  rates_[from][to] += rate;
}

const std::string& Ctmc::name(StateId id) const {
  if (id >= names_.size()) throw std::out_of_range("Ctmc::name: invalid state id");
  return names_[id];
}

std::optional<StateId> Ctmc::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

double Ctmc::rate(StateId from, StateId to) const {
  if (from >= names_.size() || to >= names_.size()) {
    throw std::out_of_range("Ctmc::rate: state id out of range");
  }
  const auto it = rates_[from].find(to);
  return it == rates_[from].end() ? 0.0 : it->second;
}

double Ctmc::exit_rate(StateId s) const {
  if (s >= names_.size()) throw std::out_of_range("Ctmc::exit_rate: invalid state id");
  double total = 0.0;
  for (const auto& [to, r] : rates_[s]) total += r;
  return total;
}

std::vector<Transition> Ctmc::transitions() const {
  // rates_[from] is an ordered map, so walking from-major/to-minor already
  // yields the documented insertion-independent (from, to)-sorted order.
  std::size_t count = 0;
  for (const auto& row : rates_) count += row.size();
  std::vector<Transition> out;
  out.reserve(count);
  for (StateId from = 0; from < rates_.size(); ++from) {
    for (const auto& [to, r] : rates_[from]) {
      out.push_back(Transition{from, to, r});
    }
  }
  return out;
}

DenseMatrix Ctmc::generator() const {
  const std::size_t n = num_states();
  DenseMatrix q(n, n);
  for (StateId from = 0; from < n; ++from) {
    double total = 0.0;
    for (const auto& [to, r] : rates_[from]) {
      q(from, to) = r;
      total += r;
    }
    q(from, from) = -total;
  }
  return q;
}

bool Ctmc::reachable(StateId source, StateId target) const {
  if (source >= names_.size() || target >= names_.size()) {
    throw std::out_of_range("Ctmc::reachable: state id out of range");
  }
  if (source == target) return true;
  std::vector<bool> seen(names_.size(), false);
  std::deque<StateId> frontier{source};
  seen[source] = true;
  while (!frontier.empty()) {
    const StateId s = frontier.front();
    frontier.pop_front();
    for (const auto& [to, r] : rates_[s]) {
      if (r <= 0.0 || seen[to]) continue;
      if (to == target) return true;
      seen[to] = true;
      frontier.push_back(to);
    }
  }
  return false;
}

std::vector<StateId> Ctmc::absorbing_states() const {
  std::vector<StateId> out;
  for (StateId s = 0; s < rates_.size(); ++s) {
    if (rates_[s].empty()) out.push_back(s);
  }
  return out;
}

}  // namespace sigcomp::markov
