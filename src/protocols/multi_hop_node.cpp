#include "protocols/multi_hop_node.hpp"

#include <utility>

namespace sigcomp::protocols {

// ------------------------------------------------------------ TreeSender --

TreeSender::TreeSender(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
                       TimerSettings timers,
                       std::vector<MessageChannel*> down,
                       std::function<void()> on_change)
    : sim_(sim),
      rng_(rng),
      mech_(mech),
      timers_(timers),
      down_(std::move(down)),
      on_change_(std::move(on_change)),
      child_active_(down_.size(), 1),
      child_installed_(down_.size(), 0),
      slot_(sim, rng, mech, timers, nullptr) {
  // Sized once, before any timer can be armed: slots capture `this`-stable
  // addresses in their retransmission closures, so the vector must never
  // reallocate afterwards.
  reliable_down_.reserve(down_.size());
  for (MessageChannel* channel : down_) {
    reliable_down_.emplace_back(sim, rng, timers.dist, timers.retrans, channel);
  }
}

void TreeSender::send_trigger_to(std::size_t c) {
  const Message msg{MessageType::kTrigger, *slot_.value(), trigger_seq_, 0};
  child_installed_[c] = 1;
  if (mech_.reliable_trigger) {
    reliable_down_[c].send(msg);
  } else {
    down_[c]->send(msg);
  }
}

void TreeSender::send_trigger() {
  for (std::size_t c = 0; c < down_.size(); ++c) {
    if (child_active_[c]) send_trigger_to(c);
  }
}

void TreeSender::start(std::int64_t value) {
  slot_.set(value);
  trigger_seq_ = next_seq_++;
  send_trigger();
  if (mech_.refresh && !refresh_timer_) arm_refresh();
  if (on_change_) on_change_();
}

void TreeSender::update(std::int64_t value) {
  if (!slot_.value()) {
    start(value);
    return;
  }
  slot_.set(value);
  trigger_seq_ = next_seq_++;
  send_trigger();
  if (on_change_) on_change_();
}

void TreeSender::arm_refresh() {
  refresh_timer_ = sim_.schedule_in(
      sim::sample(rng_, timers_.dist, timers_.refresh), [this] {
        refresh_timer_.reset();
        if (slot_.value()) {
          const Message msg{MessageType::kRefresh, *slot_.value(),
                            trigger_seq_, 0};
          for (std::size_t c = 0; c < down_.size(); ++c) {
            if (!child_active_[c]) continue;
            child_installed_[c] = 1;
            down_[c]->send(msg);
          }
          arm_refresh();
        }
      });
}

/// Emits one removal down child edge c: reliably (superseding any pending
/// trigger in the slot) when the protocol's removals are reliable, best
/// effort -- with the pending trigger cancelled -- otherwise.
void TreeSender::send_removal_to(std::size_t c, std::uint64_t seq) {
  const Message msg{MessageType::kRemove, 0, seq, 0};
  if (mech_.reliable_removal) {
    reliable_down_[c].send(msg);
  } else {
    reliable_down_[c].cancel();
    down_[c]->send(msg);
  }
}

void TreeSender::remove() {
  if (!slot_.clear()) return;
  if (refresh_timer_) {
    sim_.cancel(*refresh_timer_);
    refresh_timer_.reset();
  }
  if (mech_.explicit_removal) {
    // One removal, fanned down every branch that was ever installed; each
    // per-child reliable slot matches its own ACK against the shared seq.
    const std::uint64_t seq = next_seq_++;
    for (std::size_t c = 0; c < down_.size(); ++c) {
      if (!child_installed_[c]) {
        reliable_down_[c].cancel();
        continue;
      }
      child_installed_[c] = 0;
      send_removal_to(c, seq);
    }
  } else {
    for (ReliableSlot& slot : reliable_down_) slot.cancel();
  }
  if (on_change_) on_change_();
}

void TreeSender::graft_child(std::size_t c) {
  child_active_[c] = 1;
  if (slot_.value()) send_trigger_to(c);
}

void TreeSender::deactivate_child(std::size_t c) {
  child_active_[c] = 0;
  reliable_down_[c].cancel();
}

void TreeSender::prune_child(std::size_t c) {
  deactivate_child(c);
  if (mech_.explicit_removal && child_installed_[c]) {
    child_installed_[c] = 0;
    send_removal_to(c, next_seq_++);
  }
}

void TreeSender::stop() {
  slot_.clear();
  if (refresh_timer_) {
    sim_.cancel(*refresh_timer_);
    refresh_timer_.reset();
  }
  for (ReliableSlot& slot : reliable_down_) slot.cancel();
}

void TreeSender::handle_from_downstream(const Message& msg, std::size_t child) {
  switch (msg.type) {
    case MessageType::kAckTrigger:
    case MessageType::kAckRemove:
      reliable_down_[child].acknowledge(msg.seq);
      break;
    case MessageType::kNotice:
      // A receiver removed our state (timeout or false external signal);
      // re-install.  Under HS the notice traveled reliably, so acknowledge.
      // The fresh trigger goes down every branch: relays that still hold
      // the value re-ack the duplicate without re-forwarding it.
      if (mech_.external_failure_detector) {
        down_[child]->send(Message{MessageType::kAckNotice, 0, msg.seq, 0});
      }
      if (slot_.value()) {
        trigger_seq_ = next_seq_++;
        send_trigger();
      }
      break;
    default:
      break;
  }
}

// ------------------------------------------------------------- TreeRelay --

TreeRelay::TreeRelay(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
                     TimerSettings timers, MessageChannel* up,
                     std::vector<MessageChannel*> down,
                     std::function<void()> on_change)
    : sim_(sim),
      rng_(rng),
      mech_(mech),
      timers_(timers),
      up_(up),
      down_(std::move(down)),
      on_change_(std::move(on_change)),
      reliable_up_(sim, rng, timers.dist, timers.retrans, up),
      child_active_(down_.size(), 1),
      child_installed_(down_.size(), 0),
      slot_(sim, rng, mech, timers, [this] { on_expire(); }) {
  reliable_down_.reserve(down_.size());  // fixed size; see TreeSender
  for (MessageChannel* channel : down_) {
    reliable_down_.emplace_back(sim, rng, timers.dist, timers.retrans, channel);
  }
}

void TreeRelay::notify() {
  if (on_change_) on_change_();
}

/// The soft-state timeout fired and the slot dropped the value: emit the
/// one-hop repair notice where the protocol has removal notification.
void TreeRelay::on_expire() {
  if (mech_.removal_notification) {
    // One-hop repair notice (SS+RT): the upstream neighbor re-triggers.
    up_->send(Message{MessageType::kNotice, 0, 0, 0});
  }
  notify();
}

void TreeRelay::forward_trigger_to(std::size_t child, std::int64_t value) {
  const Message msg{MessageType::kTrigger, value, next_seq_++, 0};
  child_installed_[child] = 1;
  if (mech_.reliable_trigger) {
    reliable_down_[child].send(msg);
  } else {
    down_[child]->send(msg);
  }
}

void TreeRelay::forward_trigger(std::int64_t value) {
  for (std::size_t c = 0; c < down_.size(); ++c) {
    if (child_active_[c]) forward_trigger_to(c, value);
  }
}

/// Emits one removal down child edge c (see TreeSender::send_removal_to).
void TreeRelay::send_removal_to(std::size_t c, std::uint64_t seq) {
  const Message msg{MessageType::kRemove, 0, seq, 0};
  if (mech_.reliable_removal) {
    reliable_down_[c].send(msg);
  } else {
    reliable_down_[c].cancel();
    down_[c]->send(msg);
  }
}

/// Propagates a graceful removal down every branch that was ever installed
/// (NOT gated on activity: a removal chases state wherever it went).
void TreeRelay::forward_removal() {
  const std::uint64_t seq = next_seq_++;
  for (std::size_t c = 0; c < down_.size(); ++c) {
    if (!child_installed_[c]) continue;
    child_installed_[c] = 0;
    send_removal_to(c, seq);
  }
}

void TreeRelay::graft_child(std::size_t c) {
  child_active_[c] = 1;
  if (slot_.value()) forward_trigger_to(c, *slot_.value());
}

void TreeRelay::deactivate_child(std::size_t c) {
  child_active_[c] = 0;
  reliable_down_[c].cancel();
}

void TreeRelay::prune_child(std::size_t c) {
  deactivate_child(c);
  // A crashed relay cannot signal: the prune degrades to a silent
  // deactivation and the stranded downstream copies are left to their
  // soft-state timeouts (or to the removal that chases them after
  // recovery).
  if (crashed_) return;
  if (mech_.explicit_removal && child_installed_[c]) {
    child_installed_[c] = 0;
    send_removal_to(c, next_seq_++);
  }
}

void TreeRelay::handle_from_upstream(const Message& msg) {
  if (crashed_) return;  // a dead process hears nothing
  switch (msg.type) {
    case MessageType::kTrigger: {
      const bool duplicate = slot_.holds(msg.value);
      if (mech_.reliable_trigger) {
        up_->send(Message{MessageType::kAckTrigger, 0, msg.seq, 0});
      }
      slot_.set(msg.value);
      slot_.arm_timeout();
      // Duplicates (retransmission after a lost ACK) are re-ACKed but not
      // re-forwarded: the downstream copies are already in flight or pending.
      if (!duplicate) {
        forward_trigger(msg.value);
        notify();
      }
      break;
    }
    case MessageType::kRefresh:
      slot_.set(msg.value);
      slot_.arm_timeout();
      // Forward the refresh copy down every active branch, best effort.
      for (std::size_t c = 0; c < down_.size(); ++c) {
        if (!child_active_[c]) continue;
        child_installed_[c] = 1;
        down_[c]->send(msg);
      }
      notify();
      break;
    case MessageType::kRemove:
      // Graceful explicit removal (SS+ER best effort; SS+RTR/HS reliable).
      // Always re-ACK so a lost ACK is repaired by the retransmission, but
      // propagate only once per removal seq -- a retransmitted removal must
      // not re-flood the subtree.
      if (mech_.reliable_removal) {
        up_->send(Message{MessageType::kAckRemove, 0, msg.seq, 0});
      }
      // The parent's seq counter is monotonic, so anything at or below the
      // last processed removal is a stale duplicate -- it must neither
      // re-flood the subtree nor wipe state a later graft re-installed.
      if (removal_seen_ && msg.seq <= removal_seq_seen_) break;
      removal_seen_ = true;
      removal_seq_seen_ = msg.seq;
      if (slot_.clear()) notify();
      forward_removal();
      break;
    case MessageType::kTeardown:
      // Reliable downstream propagation of a removal signal (HS recovery).
      up_->send(Message{MessageType::kAckNotice, 0, msg.seq, 0});
      if (slot_.clear()) notify();
      for (std::size_t c = 0; c < down_.size(); ++c) {
        child_installed_[c] = 0;
        reliable_down_[c].send(
            Message{MessageType::kTeardown, 0, next_seq_++, 0});
      }
      break;
    case MessageType::kAckNotice:
      reliable_up_.acknowledge(msg.seq);
      break;
    default:
      break;
  }
}

void TreeRelay::handle_from_downstream(const Message& msg, std::size_t child) {
  if (crashed_) return;  // a dead process hears nothing
  switch (msg.type) {
    case MessageType::kAckTrigger:
    case MessageType::kAckNotice:
    case MessageType::kAckRemove:
      reliable_down_[child].acknowledge(msg.seq);
      break;
    case MessageType::kNotice:
      if (mech_.external_failure_detector) {
        // HS recovery: acknowledge, drop our own state, keep flooding the
        // notice toward the sender.
        down_[child]->send(Message{MessageType::kAckNotice, 0, msg.seq, 0});
        if (slot_.value()) {
          slot_.clear();
          notify();
        }
        reliable_up_.send(Message{MessageType::kNotice, 0, next_seq_++, 0});
      } else if (slot_.value() && child_active_[child]) {
        // SS+RT one-hop repair: re-install our value down the branch the
        // notice came from (the other branches kept their copies) -- unless
        // the branch was pruned, in which case the timeout was the point.
        forward_trigger_to(child, *slot_.value());
      }
      break;
    default:
      break;
  }
}

void TreeRelay::stop() {
  slot_.clear();
  reliable_up_.cancel();
  for (ReliableSlot& slot : reliable_down_) slot.cancel();
}

void TreeRelay::crash() {
  const bool held = slot_.clear();
  reliable_up_.cancel();
  for (ReliableSlot& slot : reliable_down_) slot.cancel();
  crashed_ = true;
  if (held) notify();
}

void TreeRelay::recover() { crashed_ = false; }

void TreeRelay::external_removal_signal() {
  if (crashed_) return;  // the detector cannot fire inside a dead process
  if (!slot_.clear()) return;
  notify();
  reliable_up_.send(Message{MessageType::kNotice, 0, next_seq_++, 0});
  for (std::size_t c = 0; c < down_.size(); ++c) {
    child_installed_[c] = 0;
    reliable_down_[c].send(Message{MessageType::kTeardown, 0, next_seq_++, 0});
  }
}

}  // namespace sigcomp::protocols
