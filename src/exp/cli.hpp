// Minimal command-line option parser for the sigcomp tools, plus the
// topology-file loader the tree-aware subcommands share.
//
// The parser supports `--name value`, `--name=value`, boolean flags and
// positional arguments, with generated help text.  Self-contained and
// unit-tested -- the CLI binary stays a thin shell over the library.
#pragma once

#include <initializer_list>
#include <istream>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/topology.hpp"

namespace sigcomp::exp {

/// Declarative option set + parser.
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a boolean flag (present/absent).
  void add_flag(std::string name, std::string description);

  /// Registers a value option with a default (shown in help).
  void add_option(std::string name, std::string description,
                  std::string default_value);

  /// Parses argv (argv[0] is skipped).  Returns false on any error; call
  /// error() for the message.  `--help` sets help_requested() and returns
  /// true without validating further.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// True when a flag was passed (flags only).
  [[nodiscard]] bool flag(std::string_view name) const;

  /// Value of an option (its default when not passed).
  [[nodiscard]] std::string get(std::string_view name) const;

  /// Value of an enumerated option; throws std::invalid_argument (with the
  /// allowed values in the message) when it is not one of `allowed`.
  /// Used for flags like `--loss-model {iid, ge}`.
  [[nodiscard]] std::string get_choice(
      std::string_view name,
      std::initializer_list<std::string_view> allowed) const;

  /// True when the user explicitly passed the option.
  [[nodiscard]] bool passed(std::string_view name) const;

  /// Numeric accessors; throw std::invalid_argument on malformed values.
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] long get_long(std::string_view name) const;

  /// Non-option arguments, in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Generated usage text.
  [[nodiscard]] std::string help() const;

 private:
  struct Spec {
    std::string description;
    std::string value;     // default, replaced when passed
    bool is_flag = false;
    bool seen = false;
  };

  [[nodiscard]] const Spec& require(std::string_view name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Spec, std::less<>> specs_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

// ------------------------------------------------------- topology files --

/// Parses a parent-vector topology from a stream: whitespace-separated
/// non-negative integers, one per edge (`parent[e]` is the parent node of
/// node e+1), with `#` starting a to-end-of-line comment.  Validates the
/// result through TreeSpec::validate.  Throws std::invalid_argument on
/// malformed input (`name` labels the message).
[[nodiscard]] TreeSpec parse_tree_spec(std::istream& in,
                                       const std::string& name);

/// Reads a parent-vector topology file (see parse_tree_spec).  Throws
/// std::invalid_argument when the file cannot be opened or is malformed.
[[nodiscard]] TreeSpec load_tree_file(const std::string& path);

/// One-line shape summary of a tree: node/receiver counts, depth, and the
/// fan-out histogram ("children:count" pairs over non-leaf nodes) -- what
/// the CLI prints when replaying a measured topology.
[[nodiscard]] std::string tree_shape_summary(const TreeSpec& spec);

}  // namespace sigcomp::exp
