#include "exp/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace sigcomp::exp {
namespace {

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::default_thread_count());
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnFreshPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  parallel_for(pool, hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, SingleThreadRunsOnCallingThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  parallel_for(pool, seen.size(), [&seen, caller](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const std::thread::id id : seen) EXPECT_EQ(id, caller);
}

TEST(ParallelFor, SameResultAcrossThreadCounts) {
  // Index-keyed output: 1, 2 and 8 threads must produce identical vectors.
  std::vector<std::vector<double>> results;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<double> out(257);
    parallel_for(pool, out.size(), [&out](std::size_t i) {
      out[i] = static_cast<double>(i * i) / 3.0;
    });
    results.push_back(std::move(out));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelFor, RethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      parallel_for(pool, 64,
                   [](std::size_t i) {
                     if (i == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> count{0};
  parallel_for(pool, 10, [&count](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, MoreItemsThanThreadsLoadBalances) {
  ThreadPool pool(2);
  std::vector<int> out(1001, -1);
  parallel_for(pool, out.size(),
               [&out](std::size_t i) { out[i] = static_cast<int>(i); });
  const long long sum = std::accumulate(out.begin(), out.end(), 0LL);
  EXPECT_EQ(sum, 1000LL * 1001 / 2);
}

TEST(ParallelFor, PoolIsReusableAcrossManyCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    parallel_for(pool, 50, [&count](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 50) << "round " << round;
  }
}

}  // namespace
}  // namespace sigcomp::exp
