// Soak and property tests of the session arena (exp/session_arena.hpp) and
// of the farm's zero-steady-state-allocation contract -- the
// test_event_queue pool-flatness discipline lifted to whole sessions:
// once the pool reaches its churn high-water mark, a hundred thousand
// randomized arrival/teardown cycles must not grow it by one slot or one
// chunk, and a steady-state farm run must not heap-allocate one event
// callback.
#include "exp/session_arena.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/session_farm.hpp"
#include "sim/event_queue.hpp"

namespace sigcomp::exp {
namespace {

/// Arena occupant with externally driven quiescence and global
/// construction/destruction accounting (catches double-destroys and leaks
/// across recycling and mid-run arena teardown).
class SoakSession {
 public:
  SoakSession() { ++constructed; }
  ~SoakSession() { ++destroyed; }
  SoakSession(const SoakSession&) = delete;
  SoakSession& operator=(const SoakSession&) = delete;

  /// Marks the session safe to destroy and recycle (a drained channel pair,
  /// in farm terms).  Retirement and settling are deliberately decoupled so
  /// the soak can interleave them out of order.
  void settle() noexcept { quiescent_ = true; }
  [[nodiscard]] bool quiescent() const noexcept { return quiescent_; }

  static std::size_t constructed;
  static std::size_t destroyed;

 private:
  bool quiescent_ = false;
};

std::size_t SoakSession::constructed = 0;
std::size_t SoakSession::destroyed = 0;

TEST(FarmArena, HundredThousandChurnCyclesKeepThePoolFlat) {
  SessionArena<SoakSession> arena(64);
  std::mt19937 rng(7);  // NOLINT(cert-msc32-c,cert-msc51-cpp) fixed test seed
  // Live sessions as (slot, object); retired-but-unsettled objects wait in
  // `pending`, settled in random order -- out-of-order session ends.
  std::vector<std::pair<std::uint32_t, SoakSession*>> live;
  std::vector<SoakSession*> pending;
  constexpr std::size_t kCycles = 100000;
  constexpr std::size_t kMaxLive = 96;
  constexpr std::size_t kMaxUnsettled = 16;
  // Deterministic warm-up to the pool's invariant ceiling: kMaxLive live
  // sessions plus kMaxUnsettled cooling-but-unquiescent ones, every one in
  // a distinct slot.  Because the arena only grows when NO recyclable slot
  // exists, no state the randomized soak can reach ever needs a larger
  // pool -- so from here on, flat means FLAT.
  for (std::size_t i = 0; i < kMaxLive - kMaxUnsettled; ++i) {
    live.push_back(arena.spawn());
  }
  for (std::size_t i = 0; i < kMaxUnsettled; ++i) {
    const auto [slot, session] = arena.spawn();
    arena.retire(slot);
    pending.push_back(session);
  }
  for (std::size_t i = 0; i < kMaxUnsettled; ++i) {
    live.push_back(arena.spawn());
  }
  const std::size_t flat_capacity = arena.slot_capacity();
  const std::size_t flat_chunks = arena.chunk_allocations();
  ASSERT_EQ(flat_capacity, kMaxLive + kMaxUnsettled);
  for (std::size_t cycle = 0; cycle < kCycles; ++cycle) {
    switch (rng() % 3) {
      case 0:  // arrival
        if (live.size() < kMaxLive) {
          live.push_back(arena.spawn());
        }
        break;
      case 1:  // teardown of a random live session
        if (!live.empty()) {
          const std::size_t i = rng() % live.size();
          arena.retire(live[i].first);
          pending.push_back(live[i].second);
          live[i] = live.back();
          live.pop_back();
        }
        break;
      default:  // a random retired session reaches quiescence
        if (!pending.empty()) {
          const std::size_t i = rng() % pending.size();
          pending[i]->settle();
          pending[i] = pending.back();
          pending.pop_back();
        }
        break;
    }
    // Quiescence lags retirement by a BOUNDED delay, as in the farm (a few
    // channel delay-spans); without the bound the unsettled backlog would
    // random-walk and the high-water mark would creep with sqrt(t).
    while (pending.size() > kMaxUnsettled) {
      const std::size_t i = rng() % pending.size();
      pending[i]->settle();
      pending[i] = pending.back();
      pending.pop_back();
    }
  }
  // Pool flatness: 100k churn cycles after warm-up grew the pool by
  // nothing -- every arrival reused a recycled slot, and the high-water
  // mark is the concurrency ceiling, not the ~33k sessions spawned.
  EXPECT_EQ(arena.slot_capacity(), flat_capacity);
  EXPECT_EQ(arena.chunk_allocations(), flat_chunks);
  // Every session ever spawned is either still live, still cooling, or was
  // destroyed on reclamation -- nothing leaked, nothing destroyed twice.
  EXPECT_EQ(SoakSession::constructed - SoakSession::destroyed,
            live.size() + arena.cooling());
}

TEST(FarmArena, FreeListReusesTheSlotOfAQuiescentSession) {
  SessionArena<SoakSession> arena(8);
  const auto [first_slot, first] = arena.spawn();
  first->settle();
  arena.retire(first_slot);
  const auto [second_slot, second] = arena.spawn();
  EXPECT_EQ(second_slot, first_slot);  // recycled, not grown
  EXPECT_EQ(arena.slot_capacity(), 1u);
  EXPECT_EQ(arena.chunk_allocations(), 1u);
  second->settle();
  arena.retire(second_slot);
}

TEST(FarmArena, MidRunDestructionDestroysEveryOccupantExactlyOnce) {
  const std::size_t constructed_before = SoakSession::constructed;
  const std::size_t destroyed_before = SoakSession::destroyed;
  {
    // A farm shard stopped mid-run: live sessions, settled-and-unsettled
    // cooling sessions and recycled slots all present at destruction.
    SessionArena<SoakSession> arena(16);
    std::vector<std::pair<std::uint32_t, SoakSession*>> sessions;
    sessions.reserve(100);
    for (int i = 0; i < 100; ++i) sessions.push_back(arena.spawn());
    for (int i = 0; i < 30; ++i) {
      if (i % 3 == 0) sessions[i].second->settle();
      arena.retire(sessions[i].first);
    }
    arena.spawn();  // reclaims a settled slot, leaves the rest cooling
  }
  EXPECT_EQ(SoakSession::constructed - constructed_before,
            SoakSession::destroyed - destroyed_before);
}

TEST(FarmArena, SteadyStateFarmRunIsAllocationFreeAndRecyclesSlots) {
  // High-churn farm: a 400 s arrival window with 5 s lifetimes keeps ~50
  // sessions of 4000 in flight, so the arena must recycle furiously.  One
  // thread on a one-thread pool runs shards on THIS thread, which is what
  // makes the thread-local EventCallback counter observable.
  SessionFarmOptions options;
  options.seed = 5;
  options.sessions = 4000;
  options.arrival_rate = 10.0;
  options.session_lifetime = 5.0;
  options.threads = 1;
  options.shard_size = 4096;
  const std::size_t allocations_before = sim::EventCallback::heap_allocations();
  const SessionFarmResult result = run_session_farm(
      ProtocolKind::kSSRT, SingleHopParams::kazaa_defaults(), options);
  const std::size_t allocations_after = sim::EventCallback::heap_allocations();
  // Zero heap allocations from event scheduling across the entire run:
  // every arrival, timer, delivery and teardown closure fit the
  // EventCallback small-buffer storage -- the same discipline
  // test_event_queue pins for the queue's own pooled slots.
  EXPECT_EQ(allocations_after, allocations_before);
  EXPECT_EQ(result.sessions, 4000u);
  // Slot recycling: the pool high-water mark tracks peak concurrency (plus
  // a cooling tail), far below the 4000 sessions that passed through it.
  EXPECT_LT(result.arena_slot_high_water, 400u);
  EXPECT_GT(result.arena_slot_high_water, 0u);
  // Chunks are allocated only when the high-water mark grows: exactly
  // ceil(high_water / 256) of them, never one more.
  EXPECT_EQ(result.arena_chunk_allocations,
            (result.arena_slot_high_water + 255) / 256);
}

}  // namespace
}  // namespace sigcomp::exp
