// IGMP-flavoured scenario (Sec. I / II of the paper): a host registers
// multicast group membership at its first-hop router.  IGMPv1 removed
// memberships purely by timeout (the SS pattern); IGMPv2 added an explicit
// Leave message (the SS+ER pattern).  While membership state is stale the
// router keeps forwarding multicast traffic nobody wants -- the
// application-specific cost here is wasted downstream bandwidth.
//
// This example measures that cost with the discrete-event simulator (real
// deterministic-timer protocols, not the model) and shows why the v1 -> v2
// protocol evolution was worth it.
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/table.hpp"

int main() {
  using namespace sigcomp;

  // Membership churn: viewers hop between channels every couple of minutes.
  SingleHopParams p;
  p.loss = 0.01;            // LAN, nearly loss-free
  p.delay = 0.002;          // 2 ms to the first-hop router
  p.retrans_timer = 0.008;  // 4x delay
  p.update_rate = 0.0;      // membership has no "update", only join/leave
  p.removal_rate = 1.0 / 120.0;  // mean 2-minute memberships
  p.refresh_timer = 10.0;   // IGMP-ish report interval
  p.timeout_timer = 30.0;   // 3 missed reports

  constexpr double kStreamMbps = 4.0;  // one SD multicast stream

  protocols::SimOptions options;
  options.sessions = 3000;
  options.seed = 2026;

  exp::Table table(
      "IGMP-style group membership, simulated (2-minute memberships, "
      "10 s reports, 30 s timeout)",
      {"protocol", "protocol analogue", "I (sim)", "unwanted Mbit/h",
       "signaling msgs/session"});

  const auto row = [&](ProtocolKind kind, const char* analogue) {
    const protocols::SimResult sim = evaluate_simulated(kind, p, options);
    // Stale state streams unwanted traffic for I fraction of the time.
    const double wasted_mbit_per_hour =
        sim.metrics.inconsistency * kStreamMbps * 3600.0;
    table.add_row({std::string(to_string(kind)), std::string(analogue),
                   sim.metrics.inconsistency, wasted_mbit_per_hour,
                   sim.metrics.message_rate / p.removal_rate});
  };

  row(ProtocolKind::kSS, "IGMPv1 (timeout-only leave)");
  row(ProtocolKind::kSSER, "IGMPv2 (explicit Leave)");
  row(ProtocolKind::kSSRTR, "hypothetical reliable Leave");
  row(ProtocolKind::kHS, "hard-state membership");
  table.print(std::cout);

  std::cout << "\nThe v1->v2 step (adding an explicit Leave) removes most of "
               "the unwanted-traffic cost;\nmaking the Leave reliable buys "
               "the remaining sliver at one extra ACK per departure.\n";
  return 0;
}
