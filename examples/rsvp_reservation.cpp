// RSVP-flavoured multi-hop scenario (Sec. III-B): a sender maintains a
// bandwidth reservation along a 10-hop path.  Every router on the path
// holds reservation state; a hop with stale state either over-reserves
// (wasted capacity) or drops the guarantee.  Compares end-to-end soft state
// (SS, like original RSVP), soft state with hop-by-hop reliable triggers
// (SS+RT, like RSVP with the RFC 2961 staged-refresh extension), and a
// hard-state reservation protocol (ST-II-like), with both the analytic
// chain model and the packet-level simulator.
#include <iostream>

#include "analytic/multi_hop.hpp"
#include "core/evaluator.hpp"
#include "exp/table.hpp"

int main() {
  using namespace sigcomp;

  MultiHopParams p;
  p.hops = 10;
  p.loss = 0.02;
  p.delay = 0.010;          // 10 ms per hop
  p.retrans_timer = 0.040;  // 4x per-hop delay
  p.update_rate = 1.0 / 90.0;  // reservation re-sized every ~90 s
  p.refresh_timer = 30.0;   // RSVP's default refresh period
  p.timeout_timer = 90.0;   // 3 missed refreshes
  p.false_signal_rate = 1e-7;

  protocols::MultiHopSimOptions options;
  options.duration = 40000.0;
  options.seed = 314;

  exp::Table table(
      "10-hop bandwidth reservation (RSVP-like timers: R=30s, T=90s)",
      {"protocol", "analogue", "I path (model)", "I path (sim)",
       "I last hop (model)", "msgs/s (model)", "msgs/s (sim)"});

  const auto row = [&](ProtocolKind kind, const char* analogue) {
    const analytic::MultiHopModel model(kind, p);
    const protocols::MultiHopSimResult sim = evaluate_simulated(kind, p, options);
    table.add_row({std::string(to_string(kind)), std::string(analogue),
                   model.inconsistency(), sim.metrics.inconsistency,
                   model.hop_inconsistency(p.hops),
                   model.metrics().raw_message_rate,
                   sim.metrics.raw_message_rate});
  };
  row(ProtocolKind::kSS, "RSVP (original)");
  row(ProtocolKind::kSSRT, "RSVP + RFC2961-style reliability");
  row(ProtocolKind::kHS, "ST-II-style hard state");
  table.print(std::cout);

  // Per-hop breakdown for the soft-state variants: consistency degrades
  // with distance from the reservation initiator (paper Fig. 17).
  std::cout << '\n';
  exp::Table perhop("Per-hop fraction of time the reservation is stale (model)",
                    {"hop", "SS", "SS+RT", "HS"});
  const analytic::MultiHopModel ss(ProtocolKind::kSS, p);
  const analytic::MultiHopModel ssrt(ProtocolKind::kSSRT, p);
  const analytic::MultiHopModel hs(ProtocolKind::kHS, p);
  for (std::size_t hop = 1; hop <= p.hops; ++hop) {
    perhop.add_row({static_cast<double>(hop), ss.hop_inconsistency(hop),
                    ssrt.hop_inconsistency(hop), hs.hop_inconsistency(hop)});
  }
  perhop.print(std::cout);

  std::cout << "\nHop-by-hop reliable triggers give RSVP-class soft state "
               "nearly hard-state path consistency while keeping refreshes "
               "as the safety net for crashed routers.\n";
  return 0;
}
