// Beyond-the-paper figure: dynamic leaf membership (IGMP-style churn) on
// signaling trees.  Receivers join and leave a live tree; each protocol
// pays for membership dynamics in its own currency -- soft state leaves
// orphaned copies on the pruned branch until the timeout fires (the
// IGMPv1 story), explicit removal prunes in one propagation delay (the
// IGMPv2 Leave), reliable removal and the hard-state teardown make the
// prune certain.  This bench sweeps protocol x churn rate x fanout and
// reports per-join setup latency, per-leave orphan windows, inconsistency
// (orphaned state counts against it) and message cost.
//
// All runs fan out over the parallel engine keyed by (cell, replica), so
// the sweep is bit-identical at any thread count.  With --quick the binary
// (a) re-runs the grid at 1, 2 and 8 threads and exits 1 on any bit
// difference, and (b) re-runs a churning tree-session farm at several
// shard sizes and thread counts and exits 1 unless the farm's churn report
// is bit-identical -- the determinism locks, CI-enforced.
//
// Usage: fig_leaf_churn [--quick] [--csv PATH] [--threads N]
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "exp/parallel.hpp"
#include "exp/session_farm.hpp"
#include "exp/table.hpp"
#include "protocols/tree_run.hpp"

namespace {

using namespace sigcomp;

constexpr std::uint64_t kBaseSeed = 23;
constexpr double kLeafLifetime = 60.0;  ///< mean joined seconds per leaf

struct Scenario {
  std::size_t fanout = 2;
  double rejoin_rate = 0.0;  ///< churn knob: rejoins/s per departed leaf
  analytic::TreeParams params;

  [[nodiscard]] std::string shape() const {
    return "f" + std::to_string(fanout) + " d2";
  }
};

std::vector<Scenario> build_scenarios(bool quick) {
  const std::vector<std::size_t> fanouts =
      quick ? std::vector<std::size_t>{2} : std::vector<std::size_t>{2, 4, 8};
  const std::vector<double> rates =
      quick ? std::vector<double>{1.0 / 60.0, 1.0 / 15.0}
            : std::vector<double>{1.0 / 120.0, 1.0 / 60.0, 1.0 / 15.0};
  MultiHopParams base;
  base.loss = 0.02;
  base.delay = 0.01;
  std::vector<Scenario> out;
  for (const std::size_t fanout : fanouts) {
    for (const double rate : rates) {
      Scenario s;
      s.fanout = fanout;
      s.rejoin_rate = rate;
      s.params = analytic::TreeParams::balanced(base, fanout, 2);
      out.push_back(std::move(s));
    }
  }
  return out;
}

/// Every replica result of the whole grid, in (scenario, protocol, replica)
/// order -- the unit the thread-identity check compares bit-for-bit.
std::vector<protocols::TreeSimResult> run_grid(
    const std::vector<Scenario>& scenarios, std::size_t replications,
    double duration, exp::ParallelSweep& engine) {
  const std::size_t protocols_n = kMultiHopProtocols.size();
  const std::size_t jobs = scenarios.size() * protocols_n * replications;
  return engine.map_indexed(jobs, [&](std::size_t job) {
    const std::size_t replica = job % replications;
    const std::size_t cell = job / replications;
    const std::size_t protocol = cell % protocols_n;
    const std::size_t scenario = cell / protocols_n;
    protocols::TreeSimOptions options;
    options.seed = exp::replica_seed(kBaseSeed, cell, replica);
    options.duration = duration;
    options.churn.leaf_lifetime = kLeafLifetime;
    options.churn.rejoin_rate = scenarios[scenario].rejoin_rate;
    return protocols::run_tree(kMultiHopProtocols[protocol],
                               scenarios[scenario].params, options);
  });
}

bool identical(const std::vector<protocols::TreeSimResult>& a,
               const std::vector<protocols::TreeSimResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].metrics.inconsistency != b[i].metrics.inconsistency ||
        a[i].messages != b[i].messages ||
        a[i].relay_timeouts != b[i].relay_timeouts ||
        !(a[i].churn == b[i].churn)) {
      return false;
    }
  }
  return true;
}

/// Shard-size / thread-count determinism of the churning tree-session farm
/// (the acceptance lock: a churn scenario must be bit-identical across
/// 1/2/8 threads AND shard sizes).
bool farm_determinism_check() {
  MultiHopParams base;
  base.loss = 0.02;
  const analytic::TreeParams tree = analytic::TreeParams::balanced(base, 2, 2);
  exp::SessionFarmOptions options;
  options.seed = 99;
  options.sessions = 64;
  options.arrival_rate = 4.0;
  options.session_lifetime = 80.0;
  options.leaf_churn.leaf_lifetime = 20.0;
  options.leaf_churn.rejoin_rate = 1.0 / 10.0;
  options.shard_size = 64;
  options.threads = 1;
  const exp::SessionFarmResult reference =
      exp::run_session_farm(ProtocolKind::kSSER, tree, options);
  bool ok = reference.churn.leaves > 0 && reference.churn.completed_joins > 0;
  for (const std::size_t shard_size : {9u, 16u, 64u}) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      exp::SessionFarmOptions variant = options;
      variant.shard_size = shard_size;
      variant.threads = threads;
      const exp::SessionFarmResult result =
          exp::run_session_farm(ProtocolKind::kSSER, tree, variant);
      if (!(result.churn == reference.churn) ||
          result.messages != reference.messages ||
          result.summary.mean.inconsistency !=
              reference.summary.mean.inconsistency) {
        std::cerr << "FAIL: churning farm diverged at shard size "
                  << shard_size << ", " << threads << " thread(s)\n";
        ok = false;
      }
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) try {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t replications = quick ? 2 : 5;
  const double duration = quick ? 2000.0 : 20000.0;
  const std::vector<Scenario> scenarios = build_scenarios(quick);
  const std::size_t protocols_n = kMultiHopProtocols.size();

  exp::ParallelSweep engine(exp::threads_from_args(argc, argv));
  const std::vector<protocols::TreeSimResult> grid =
      run_grid(scenarios, replications, duration, engine);

  exp::Table table(
      "Leaf-churn figure: mean membership " +
          std::to_string(static_cast<int>(kLeafLifetime)) +
          " s, depth-2 trees (orphaned state counts as inconsistent)",
      {"shape", "receivers", "rejoin/s", "protocol", "joins", "setup lat (s)",
       "orphan win (s)", "orphan max (s)", "I (sim)", "rate (msg/s)"});
  for (std::size_t s = 0; s < scenarios.size(); ++s) {
    const Scenario& scenario = scenarios[s];
    const double receivers =
        static_cast<double>(scenario.params.tree.leaf_count());
    for (std::size_t p = 0; p < protocols_n; ++p) {
      const std::size_t cell = s * protocols_n + p;
      protocols::ChurnReport churn;
      sim::RunningStats inconsistency;
      sim::RunningStats rate;
      for (std::size_t r = 0; r < replications; ++r) {
        const protocols::TreeSimResult& run = grid[cell * replications + r];
        churn.absorb(run.churn);
        inconsistency.add(run.metrics.inconsistency);
        rate.add(run.metrics.raw_message_rate);
      }
      table.add_row({scenario.shape(), receivers, scenario.rejoin_rate,
                     std::string(to_string(kMultiHopProtocols[p])),
                     static_cast<double>(churn.joins),
                     churn.mean_setup_latency(), churn.mean_orphan_window(),
                     churn.orphan_window_max, inconsistency.mean(),
                     rate.mean()});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the orphan window is the per-leave cost of a protocol's "
         "removal mechanism -- the soft-state timeout (SS, SS+RT) holds "
         "pruned branches for ~T seconds and inflates inconsistency as "
         "churn rises, the best-effort Leave (SS+ER) prunes in one "
         "propagation delay at a small reliability risk, and reliable "
         "removal (SS+RTR, HS) makes the prune certain.  Setup latency is "
         "what joins pay: grafts re-install from the deepest cached copy, "
         "so protocols that kept the branch warm re-join fastest.\n";

  bool ok = true;
  if (quick) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
      exp::ParallelSweep check(threads);
      if (!identical(grid, run_grid(scenarios, replications, duration, check))) {
        std::cerr << "FAIL: results at " << threads
                  << " threads differ from the --threads run\n";
        ok = false;
      }
    }
    std::cout << (ok ? "bit-identity across 1/2/8 threads: OK\n"
                     : "bit-identity across 1/2/8 threads: FAILED\n");
    const bool farm_ok = farm_determinism_check();
    std::cout << (farm_ok
                      ? "churning farm bit-identical across shard sizes and "
                        "threads: OK\n"
                      : "churning farm determinism: FAILED\n");
    ok = ok && farm_ok;
  }

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << '\n';
  return 2;
}
