#include "sim/simulator.hpp"

#include <stdexcept>

namespace sigcomp::sim {

EventId Simulator::schedule_at(Time t, EventCallback action) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  return queue_.push(t, std::move(action));
}

EventId Simulator::schedule_in(Time delay, EventCallback action) {
  if (delay < 0.0) delay = 0.0;
  return queue_.push(now_ + delay, std::move(action));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto event = queue_.pop();
  now_ = event.time;
  ++executed_;
  event.action();
  return true;
}

void Simulator::run_until(Time t) {
  while (!queue_.empty() && queue_.next_time() <= t) {
    step();
  }
  if (t > now_) now_ = t;
}

void Simulator::run(std::uint64_t max_events) {
  while (executed_ < max_events && step()) {
  }
}

}  // namespace sigcomp::sim
