// Random-number substrate: xoshiro256** seeded through SplitMix64, with
// independent streams per (seed, stream) pair.  Self-contained so that
// simulation results are bit-reproducible across standard libraries
// (std::mt19937 distribution implementations vary between vendors).
#pragma once

#include <array>
#include <cstdint>

namespace sigcomp::sim {

/// xoshiro256** by Blackman & Vigna -- fast, high-quality 64-bit generator.
class Rng {
 public:
  /// Creates stream `stream` of the generator family identified by `seed`.
  /// Different (seed, stream) pairs yield statistically independent streams.
  explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).  Requires lo < hi.  The half-open contract
  /// holds even when rounding of lo + (hi - lo) * u lands on hi exactly.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponential variate with the given mean (mean <= 0 returns 0).
  double exponential(double mean) noexcept;

  /// Standard-normal variate (Box-Muller; cached second value).
  double normal() noexcept;

  /// Pareto variate with tail index `shape` (> 0) and minimum `scale` (> 0):
  /// P(X > x) = (scale/x)^shape for x >= scale.  Heavy-tailed for shape <= 2;
  /// the mean exists only for shape > 1 (scale * shape / (shape - 1)).
  double pareto(double shape, double scale) noexcept;

  /// Pareto variate with tail index `shape` (> 1) parameterized by its mean.
  double pareto_with_mean(double shape, double mean) noexcept;

  /// Log-normal variate with log-scale parameters mu and sigma.
  double lognormal(double mu, double sigma) noexcept;

  /// Log-normal variate with the given mean and log-scale spread sigma
  /// (mu = ln(mean) - sigma^2 / 2).
  double lognormal_with_mean(double mean, double sigma) noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// How a protocol timer or channel delay is drawn.
enum class Distribution {
  kDeterministic,  ///< always exactly the mean (what real protocols do)
  kExponential,    ///< exponential with the given mean (what the model assumes)
};

/// Draws a non-negative sample with the given mean under `dist`.
[[nodiscard]] double sample(Rng& rng, Distribution dist, double mean) noexcept;

}  // namespace sigcomp::sim
