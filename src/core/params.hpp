// Parameter sets for the single-hop and multi-hop signaling models.
//
// Defaults reproduce the paper's evaluation settings: the single-hop
// "Kazaa peer <-> supernode" scenario (Sec. III-A.3) and the multi-hop
// "bandwidth reservation along a path" scenario (Sec. III-B.2).
#pragma once

#include <cstddef>

#include "core/protocol.hpp"
#include "sim/channel_process.hpp"

namespace sigcomp {

/// Parameters of the single-hop sender/receiver model (Sec. III-A).
///
/// All times are in seconds, all rates in 1/seconds, loss is a probability.
struct SingleHopParams {
  double loss = 0.02;            ///< pl: per-message loss probability
  double delay = 0.030;          ///< D: one-way channel delay (mean)
  double update_rate = 1.0 / 20.0;    ///< lambda_u: state updates per second
  double removal_rate = 1.0 / 1800.0; ///< lambda_r: 1/mean session lifetime
  double refresh_timer = 5.0;    ///< R: soft-state refresh interval
  double timeout_timer = 15.0;   ///< T: receiver state-timeout interval
  double retrans_timer = 0.120;  ///< Gamma: retransmission timer (default 4D)
  double false_signal_rate = 1e-4;  ///< lambda_e: HS external false signal rate

  /// Loss-process selection for the simulator.  `loss` always remains the
  /// *average* loss rate (the analytic model only sees averages); under
  /// kGilbertElliott the simulator drops messages in correlated bursts
  /// driven by the ge_* chain parameters instead of iid coin flips.
  /// validate() enforces that `loss` equals the chain's stationary mean,
  /// so model-vs-sim comparisons stay apples-to-apples -- prefer
  /// with_bursty_loss(), which guarantees it by construction.
  sim::LossModel loss_model = sim::LossModel::kIid;
  double ge_p_gb = 0.0;       ///< GE: P(good -> bad) per message
  double ge_p_bg = 1.0;       ///< GE: P(bad -> good) per message
  double ge_loss_good = 0.0;  ///< GE: drop probability in the good state
  double ge_loss_bad = 1.0;   ///< GE: drop probability in the bad state

  /// Paper defaults for the Kazaa scenario (already the member defaults;
  /// spelled out for readability at call sites).
  [[nodiscard]] static SingleHopParams kazaa_defaults() { return {}; }

  /// The loss process the simulator should run for this parameter set.
  [[nodiscard]] sim::LossConfig loss_config() const;

  /// Returns a copy with Gilbert-Elliott bursty loss whose stationary mean
  /// equals the current `loss` and whose mean burst length is
  /// `burst_length` messages (sim::LossConfig::gilbert_elliott_matched) --
  /// the analytic prediction is unchanged, only the correlation structure
  /// of the simulated channel moves.
  [[nodiscard]] SingleHopParams with_bursty_loss(double burst_length,
                                                 double loss_bad = 1.0) const;

  /// lambda_F: rate at which soft state is falsely removed at the receiver
  /// because every refresh within a timeout interval was lost:
  /// pl^(T/R) / T  (Sec. III-A.1).
  [[nodiscard]] double false_removal_rate() const;

  /// Expected session lifetime 1/lambda_r.
  [[nodiscard]] double mean_lifetime() const { return 1.0 / removal_rate; }

  /// Returns a copy with delay changed and the retransmission timer kept
  /// proportional (Gamma = 4D), as the paper does when sweeping delay.
  [[nodiscard]] SingleHopParams with_delay_scaled_retrans(double new_delay) const;

  /// Returns a copy with the refresh timer changed and the timeout timer kept
  /// at 3R, as the paper does when sweeping the refresh timer (Fig. 6, 7, 9).
  [[nodiscard]] SingleHopParams with_refresh_scaled_timeout(double new_refresh) const;

  /// Throws std::invalid_argument if any parameter is out of domain
  /// (loss outside [0,1), non-positive delay/timers, negative rates, ...).
  void validate() const;

  friend bool operator==(const SingleHopParams&, const SingleHopParams&) = default;
};

/// Parameters of the multi-hop chain model (Sec. III-B).  State lifetime is
/// infinite; only update propagation is studied.
struct MultiHopParams {
  std::size_t hops = 20;        ///< K: number of links in the chain
  double loss = 0.02;           ///< pl: per-hop loss probability (iid)
  double delay = 0.030;         ///< D: per-hop one-way delay (mean)
  double update_rate = 1.0 / 60.0;  ///< lambda_u: sender update rate
  double refresh_timer = 5.0;   ///< R
  double timeout_timer = 15.0;  ///< T
  double retrans_timer = 0.120; ///< Gamma (default 4D)
  /// lambda_e: HS per-receiver false external-signal rate.  The paper sets
  /// this to a power of the loss rate (OCR-ambiguous exponent); we use pl^4.
  double false_signal_rate = 0.02 * 0.02 * 0.02 * 0.02;

  /// Loss-process selection for the simulator (applied to every hop; see
  /// SingleHopParams and analytic::HeteroMultiHopParams for per-hop
  /// heterogeneous burstiness).  `loss` stays the per-hop average.
  sim::LossModel loss_model = sim::LossModel::kIid;
  double ge_p_gb = 0.0;       ///< GE: P(good -> bad) per message
  double ge_p_bg = 1.0;       ///< GE: P(bad -> good) per message
  double ge_loss_good = 0.0;  ///< GE: drop probability in the good state
  double ge_loss_bad = 1.0;   ///< GE: drop probability in the bad state

  [[nodiscard]] static MultiHopParams reservation_defaults() { return {}; }

  /// The per-hop loss process the simulator should run.
  [[nodiscard]] sim::LossConfig loss_config() const;

  /// Returns a copy with per-hop GE bursty loss matched to the current
  /// per-hop mean `loss` (see SingleHopParams::with_bursty_loss).
  [[nodiscard]] MultiHopParams with_bursty_loss(double burst_length,
                                                double loss_bad = 1.0) const;

  /// Rate of leaving the HS recovery state: the false-removal notification
  /// must reach the other receivers and the sender across the chain before a
  /// fresh trigger is emitted; approximated as 1/(2 K D).
  [[nodiscard]] double recovery_rate() const;

  /// Expected number of per-hop transmissions of one end-to-end message
  /// (a refresh): sum_{i=0}^{K-1} (1-pl)^i = (1 - (1-pl)^K) / pl.
  [[nodiscard]] double expected_hop_transmissions() const;

  /// Probability an end-to-end message survives all K hops.
  [[nodiscard]] double end_to_end_delivery_probability() const;

  /// Throws std::invalid_argument if any parameter is out of domain.
  void validate() const;

  friend bool operator==(const MultiHopParams&, const MultiHopParams&) = default;
};

/// Integrated-cost weight (Eq. 8): C = w * I + M.  Paper uses w = 10 msg/s.
inline constexpr double kDefaultCostWeight = 10.0;

}  // namespace sigcomp
