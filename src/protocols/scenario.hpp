// Pluggable arrival and failure scenario processes on live signaling trees.
//
// The paper's churn model is per-leaf iid exponential; real control planes
// die of *correlated* events.  This header factors the scenario out of
// MembershipController exactly the way sim/channel_process factored loss
// out of sim::Channel -- a plain config aggregate plus a stateful sampler:
//
//  - ArrivalConfig / ArrivalProcess: how detached leaves come back.  Pure
//    Poisson (the PR 5 model, default), a flash-crowd storm (an IGMP join
//    burst: the rejoin rate jumps by `flash_rate` for `flash_duration`
//    seconds after the trigger instant `flash_time`, sampled exactly by
//    piecewise-constant hazard inversion), or a diurnal sinusoid (sampled
//    by Lewis-Shedler thinning).
//  - FailureConfig / RelayFailureProcess: interior-relay crash/recovery on
//    a live Topology -- the single-hop ext_crash_recovery contrast
//    generalized onto trees.  A crashed relay goes silent and deaf, so its
//    whole subtree orphans at once; soft state self-heals via the next
//    refresh after recovery, hard state needs the external failure
//    detector, whose (configurable) latency is the crossover knob.
//  - SharedRiskConfig: correlated leave bursts keyed to a subtree -- one
//    shared-risk event detaches every joined leaf below a uniformly drawn
//    relay at once (complementing TreeParams::set_edge_bursty, which
//    correlates *loss* on shared edges).
//
// Determinism: every draw comes from the dedicated scenario substreams in
// core/rng_streams.hpp (kTreeScenario*/kSessionScenario*), so a run with
// every scenario rate at zero consumes no scenario randomness and replays
// the static/iid-churn traces bit-for-bit -- the pinned golden digests
// hold with the layer compiled in.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "protocols/topology.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {

/// Which arrival (rejoin) process detached leaves follow.
enum class ArrivalModel {
  kPoisson,     ///< homogeneous Poisson at the churn rejoin rate (default)
  kFlashCrowd,  ///< rate jumps by flash_rate inside the storm window
  kDiurnal,     ///< rate modulated by a sinusoid (period, amplitude)
};

/// Full description of an arrival process.  Plain aggregate so options
/// structs can embed and compare it; the base rejoin rate stays in
/// ChurnOptions::rejoin_rate -- this config only describes the modulation.
struct ArrivalConfig {
  ArrivalModel model = ArrivalModel::kPoisson;  ///< which process runs
  double flash_time = 0.0;      ///< storm trigger instant (seconds)
  double flash_rate = 0.0;      ///< extra rejoin rate inside the storm (1/s)
  double flash_duration = 0.0;  ///< storm length (seconds)
  double period = 0.0;          ///< diurnal period (seconds)
  double amplitude = 0.0;       ///< diurnal relative amplitude in [0, 1]

  /// Homogeneous Poisson rejoins (the PR 5 iid model).
  [[nodiscard]] static ArrivalConfig poisson();

  /// Flash-crowd storm: the rejoin rate is base + `rate` for t in
  /// [`at`, `at` + `duration`), base otherwise.
  [[nodiscard]] static ArrivalConfig flash_crowd(double at, double rate,
                                                 double duration);

  /// Diurnal modulation: rate(t) = base * (1 + amplitude * sin(2 pi t /
  /// period)).
  [[nodiscard]] static ArrivalConfig diurnal(double period, double amplitude);

  /// True when the process differs from homogeneous Poisson (and therefore
  /// draws from the dedicated scenario substream).
  [[nodiscard]] bool modulated() const noexcept {
    return model != ArrivalModel::kPoisson;
  }

  /// Throws std::invalid_argument (name-labelled) on negative times/rates,
  /// amplitude outside [0, 1], or a diurnal model without a positive period.
  void validate() const;

  friend bool operator==(const ArrivalConfig&,
                         const ArrivalConfig&) = default;  ///< field-wise
};

/// Stateful sampler of an ArrivalConfig: draws the waiting time until a
/// detached leaf's next (re)join attempt from the configured
/// non-homogeneous Poisson process.
class ArrivalProcess {
 public:
  /// No arrivals ever (base rate zero, pure Poisson).
  ArrivalProcess() = default;

  /// Validates the configuration (throws std::invalid_argument).
  /// `base_rate` is the homogeneous component -- ChurnOptions::rejoin_rate.
  ArrivalProcess(ArrivalConfig config, double base_rate);

  /// The configuration this process samples.
  [[nodiscard]] const ArrivalConfig& config() const noexcept {
    return config_;
  }
  /// The homogeneous base rate (1/s).
  [[nodiscard]] double base_rate() const noexcept { return base_rate_; }

  /// The instantaneous rate lambda(t).
  [[nodiscard]] double rate_at(double t) const noexcept;

  /// Draws the delay from `now` until the next arrival; +infinity when no
  /// further arrival can occur (all remaining rate is zero).  Flash crowds
  /// invert the piecewise-constant integrated hazard exactly; diurnal
  /// rates use Lewis-Shedler thinning at lambda_max = base * (1 +
  /// amplitude).
  [[nodiscard]] double next_delay(double now, sim::Rng& rng) const;

 private:
  ArrivalConfig config_{};
  double base_rate_ = 0.0;
};

/// Interior-relay crash/recovery workload knobs.  Defaults disable the
/// process (no crashes: the bit-identity baseline).
struct FailureConfig {
  /// Tree-wide crash rate (crashes/s, exponential inter-crash times);
  /// <= 0 disables the process.  Each crash picks a uniform interior relay.
  double crash_rate = 0.0;
  /// Mean relay downtime in seconds (exponential).
  double recovery_time = 10.0;
  /// Mean latency of the hard-state external failure detector in seconds
  /// (exponential); repair (re-graft from the parent's cached copy) happens
  /// at max(recovery, detection).  Soft-state protocols ignore it -- they
  /// self-heal via the first refresh after recovery.
  double detector_delay = 5.0;

  /// Interior-relay crashes at `rate` with the given mean downtime and
  /// detector latency.
  [[nodiscard]] static FailureConfig relay_crash(double rate,
                                                 double recovery = 10.0,
                                                 double detector = 5.0);

  /// True when the process has anything to do.
  [[nodiscard]] bool enabled() const noexcept { return crash_rate > 0.0; }

  /// Throws std::invalid_argument (name-labelled) on non-finite or
  /// negative values.
  void validate() const;

  friend bool operator==(const FailureConfig&,
                         const FailureConfig&) = default;  ///< field-wise
};

/// Shared-risk correlated leave bursts.  Defaults disable the process.
struct SharedRiskConfig {
  /// Tree-wide burst rate (bursts/s, exponential inter-burst times); <= 0
  /// disables the process.  Each burst detaches every joined leaf below a
  /// uniformly drawn relay at once.
  double burst_rate = 0.0;

  /// Subtree leave bursts at `rate`.
  [[nodiscard]] static SharedRiskConfig bursts(double rate);

  /// True when the process has anything to do.
  [[nodiscard]] bool enabled() const noexcept { return burst_rate > 0.0; }

  /// Throws std::invalid_argument (name-labelled) on non-finite or
  /// negative values.
  void validate() const;

  friend bool operator==(const SharedRiskConfig&,
                         const SharedRiskConfig&) = default;  ///< field-wise
};

/// The full scenario of a run: arrival modulation, shared-risk leave
/// bursts and interior-relay failures.  All defaults off -- the static /
/// iid-churn baseline every golden digest pins.
struct ScenarioOptions {
  ArrivalConfig arrival;      ///< how detached leaves come back
  SharedRiskConfig shared_risk;  ///< correlated subtree leave bursts
  FailureConfig failure;      ///< interior-relay crash/recovery

  /// True when the membership controller needs the scenario substream
  /// (modulated arrivals or shared-risk bursts).
  [[nodiscard]] bool membership_processes() const noexcept {
    return arrival.modulated() || shared_risk.enabled();
  }

  /// True when any scenario process is active.
  [[nodiscard]] bool enabled() const noexcept {
    return membership_processes() || failure.enabled();
  }

  /// Validates every embedded config (throws std::invalid_argument with
  /// the offending option named).
  void validate() const;

  friend bool operator==(const ScenarioOptions&,
                         const ScenarioOptions&) = default;  ///< field-wise
};

/// Drives interior-relay crashes and recoveries on a live Topology.
///
/// Crash semantics: the victim relay loses its state copy and every pending
/// timer silently and goes deaf (TreeRelay::crash) -- its subtree is
/// orphaned at once.  The parent keeps the edge active.  Recovery
/// (TreeRelay::recover) restores message processing but NOT state; repair
/// is protocol-shaped:
///  - soft state (refresh-driven): the first refresh forwarded by the
///    parent after recovery re-installs the copy, so the expected outage is
///    about downtime + refresh/2 -- no detector involved;
///  - hard state (external_failure_detector): nothing refreshes, so the
///    process models an external detector with exponential latency
///    `detector_delay`; the parent's cached copy is re-grafted down the
///    edge (Topology::regraft_edge) at max(recovery, detection).
/// Crossing the detector latency over the soft-state refresh interval
/// reproduces the single-hop ext_crash_recovery contrast on trees.
class RelayFailureProcess {
 public:
  /// `external_detector` selects the hard-state repair path (pass
  /// MechanismSet::external_failure_detector).  `rng` must outlive the
  /// process and must be the dedicated scenario-failure substream.
  /// Validates `config` (throws std::invalid_argument).
  RelayFailureProcess(sim::Simulator& sim, Topology& topology, sim::Rng& rng,
                      const FailureConfig& config, bool external_detector);

  RelayFailureProcess(const RelayFailureProcess&) = delete;  ///< non-copyable
  RelayFailureProcess& operator=(const RelayFailureProcess&) = delete;

  /// Schedules the first crash.  No-op when the config is disabled or the
  /// tree has no interior relay (a single-hop star's relays are all
  /// leaves).
  void start();

  /// Cancels every pending crash/recovery/detection event (the session-farm
  /// teardown path: a finished session must leave no straggler events).
  void stop();

  /// Crashes driven so far.
  [[nodiscard]] std::uint64_t crashes() const noexcept { return crashes_; }
  /// Recoveries completed so far.
  [[nodiscard]] std::uint64_t recoveries() const noexcept {
    return recoveries_;
  }
  /// True while relay `r` is crashed by this process.
  [[nodiscard]] bool down(std::size_t r) const { return down_[r] != 0; }

 private:
  void schedule_crash();
  void crash_tick();
  void complete_recovery(std::size_t r);
  void complete_detection(std::size_t r);
  void repair(std::size_t r);

  sim::Simulator& sim_;
  Topology& topology_;
  sim::Rng& rng_;
  FailureConfig config_;
  bool external_detector_ = false;

  std::vector<std::size_t> interior_;  ///< relays with fanout > 0
  std::vector<char> down_;             ///< per relay: currently crashed
  std::vector<char> detected_;         ///< per relay: detector fired already
  std::vector<std::optional<sim::EventId>> recovery_event_;  ///< per relay
  std::vector<std::optional<sim::EventId>> detect_event_;    ///< per relay
  std::optional<sim::EventId> crash_timer_;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace sigcomp::protocols
