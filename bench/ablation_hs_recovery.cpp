// Ablation of the hard-state protocol's Achilles heel: the external
// failure detector (Sec. II / III-B).  Sweeps (a) the false-signal rate
// lambda_e in the single-hop model and (b) the per-receiver false-signal
// rate in the multi-hop chain, showing when HS loses its consistency edge
// over SS+RTR / SS+RT.
//
// Usage: ablation_hs_recovery [--csv PATH]
#include <iostream>

#include "analytic/multi_hop.hpp"
#include "analytic/single_hop.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  // (a) single hop: HS vs SS+RTR as the detector gets noisier.
  exp::Table single(
      "HS detector-noise ablation, single hop: I vs false-signal rate "
      "lambda_e (SS+RTR shown for reference; it has no detector)",
      {"lambda_e (1/s)", "I(HS)", "M(HS)", "I(SS+RTR)", "crossover"});
  const SingleHopParams base = SingleHopParams::kazaa_defaults();
  const Metrics rtr = analytic::evaluate_single_hop(ProtocolKind::kSSRTR, base);
  for (const double rate : exp::log_space(1e-6, 1e-1, 11)) {
    SingleHopParams p = base;
    p.false_signal_rate = rate;
    const Metrics hs = analytic::evaluate_single_hop(ProtocolKind::kHS, p);
    single.add_row({rate, hs.inconsistency, hs.message_rate, rtr.inconsistency,
                    std::string(hs.inconsistency > rtr.inconsistency ? "SS+RTR wins"
                                                                     : "HS wins")});
  }
  single.print(std::cout);
  std::cout << '\n';

  // (b) multi hop: the recovery storm costs grow with the chain length.
  exp::Table multi(
      "HS detector-noise ablation, multi hop (K = 20): I and rate vs "
      "per-receiver false-signal rate (SS+RT reference: fixed detector-free)",
      {"lambda_e (1/s)", "I(HS)", "rate(HS)", "I(SS+RT)", "crossover"});
  const MultiHopParams mh_base = MultiHopParams::reservation_defaults();
  const Metrics ssrt = analytic::evaluate_multi_hop(ProtocolKind::kSSRT, mh_base);
  for (const double rate : exp::log_space(1e-8, 1e-3, 11)) {
    MultiHopParams p = mh_base;
    p.false_signal_rate = rate;
    const Metrics hs = analytic::evaluate_multi_hop(ProtocolKind::kHS, p);
    multi.add_row({rate, hs.inconsistency, hs.raw_message_rate,
                   ssrt.inconsistency,
                   std::string(hs.inconsistency > ssrt.inconsistency
                                   ? "SS+RT wins"
                                   : "HS wins")});
  }
  multi.print(std::cout);

  std::cout << "\nTakeaway: hard state's consistency advantage is an "
               "assumption about its failure detector. Once false signals "
               "are more frequent than soft state's false timeouts "
               "(pl^(T/R)/T ~ 5e-7/s at defaults), the soft-state hybrids "
               "win while also being self-healing after crashes.\n";

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) single.write_csv_file(csv);
  return 0;
}
