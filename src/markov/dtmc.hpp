// Discrete-time Markov chain utilities: the embedded jump chain of a CTMC
// and power-iteration style analysis.  Used by tests to cross-validate the
// GTH stationary solver, and by the uniformization transient solver.
#pragma once

#include <vector>

#include "markov/ctmc.hpp"
#include "markov/dense_matrix.hpp"

namespace sigcomp::markov {

/// Row-stochastic transition matrix of the jump (embedded) chain of a CTMC.
/// Absorbing CTMC states become absorbing DTMC states (self-probability 1).
[[nodiscard]] DenseMatrix embedded_jump_matrix(const Ctmc& chain);

/// Uniformized DTMC transition matrix: P = I + Q / Lambda, where
/// Lambda >= max exit rate.  Throws if Lambda is not >= the max exit rate.
[[nodiscard]] DenseMatrix uniformized_matrix(const Ctmc& chain, double lambda);

/// Checks that each row of `p` sums to 1 and all entries are in [0, 1]
/// (within `tol`).  Returns the worst violation; tests assert on this.
[[nodiscard]] double stochastic_violation(const DenseMatrix& p);

/// Stationary distribution of an irreducible DTMC by power iteration.
/// Intended for test cross-validation only (the production path is GTH).
/// Throws std::runtime_error if not converged within `max_iters`.
[[nodiscard]] std::vector<double> dtmc_stationary_power(const DenseMatrix& p,
                                                        double tol = 1e-12,
                                                        std::size_t max_iters = 200000);

/// Converts a CTMC stationary question into the embedded-chain question:
/// pi_ctmc(i) proportional to pi_jump(i) / exit_rate(i).  Used by tests.
[[nodiscard]] std::vector<double> ctmc_stationary_via_jump_chain(const Ctmc& chain);

}  // namespace sigcomp::markov
