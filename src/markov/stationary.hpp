// Stationary distribution of an irreducible CTMC via the GTH algorithm.
//
// The Grassmann-Taksar-Heyman (GTH) procedure is a pivoting-free variant of
// Gaussian elimination that uses only additions of non-negative numbers and is
// therefore numerically stable even for stiff chains (rates spanning many
// orders of magnitude -- exactly what happens here, where channel delays are
// milliseconds and session lifetimes are thousands of seconds).
#pragma once

#include <vector>

#include "markov/ctmc.hpp"
#include "markov/dense_matrix.hpp"

namespace sigcomp::markov {

/// Computes the stationary distribution pi of an irreducible CTMC given its
/// generator Q (pi Q = 0, sum pi = 1) using GTH elimination.
///
/// Throws std::invalid_argument if Q is not square or has non-zero row sums
/// (beyond numerical tolerance), and std::runtime_error if the chain is
/// reducible (a diagonal pivot vanishes).
[[nodiscard]] std::vector<double> stationary_distribution(const DenseMatrix& q);

/// Convenience overload building the generator from a chain.
[[nodiscard]] std::vector<double> stationary_distribution(const Ctmc& chain);

/// Stationary distribution of the long-run behaviour of `chain` started in
/// `start`.  Unlike the irreducible-only overloads, this tolerates reducible
/// chains (e.g. a loss-free parameterization that never visits the "message
/// lost" states): it restricts the chain to the unique closed communicating
/// class reachable from `start`, solves GTH there, and reports probability 0
/// for every other state.
///
/// Throws std::runtime_error when more than one closed class is reachable
/// (the long-run distribution would depend on which class is entered).
[[nodiscard]] std::vector<double> stationary_distribution_from(const Ctmc& chain,
                                                               StateId start);

/// Strongly connected components of the positive-rate transition graph that
/// have no transition leaving them (i.e. closed communicating classes).
[[nodiscard]] std::vector<std::vector<StateId>> closed_classes(const Ctmc& chain);

/// Verifies pi Q ~= 0; returns the infinity norm of pi Q (tests use this).
[[nodiscard]] double stationary_residual(const DenseMatrix& q,
                                         const std::vector<double>& pi);

}  // namespace sigcomp::markov
