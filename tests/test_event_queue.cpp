#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

namespace sigcomp::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(1.0, [&] { order.push_back(1); });
  q.push(1.0, [&] { order.push_back(2); });
  q.push(1.0, [&] { order.push_back(3); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, NextTimePeeksWithoutPopping) {
  EventQueue q;
  q.push(5.0, [] {});
  q.push(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(1.0, [&] { ++fired; });
  q.push(2.0, [&] { fired += 10; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopReturnsFalse) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelledHeadIsSkipped) {
  EventQueue q;
  int fired = 0;
  const EventId first = q.push(1.0, [&] { fired = 1; });
  q.push(2.0, [&] { fired = 2; });
  q.cancel(first);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  q.pop().action();
  EXPECT_EQ(fired, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RejectsNonFiniteTimeAndEmptyAction) {
  EventQueue q;
  EXPECT_THROW(q.push(std::nan(""), [] {}), std::invalid_argument);
  EXPECT_THROW(q.push(1.0, EventCallback{}), std::invalid_argument);
}

TEST(EventQueue, CancelHeavyWorkloadKeepsHeapCompact) {
  // Regression: cancel() used to leave dead entries in the heap until they
  // surfaced, so a refresh/backoff-heavy run (schedule + cancel churn at
  // far-future times that never surface) carried O(cancelled) garbage.
  EventQueue q;
  std::vector<EventId> live;
  for (int i = 0; i < 100; ++i) {
    live.push_back(q.push(1e9 + i, [] {}));  // long-lived timers, never pop
  }
  for (int round = 0; round < 200000; ++round) {
    // A timer is set and re-set before ever firing -- the soft-state
    // refresh pattern.
    const EventId id = q.push(1e6 + round, [] {});
    ASSERT_TRUE(q.cancel(id));
    EXPECT_LE(q.heap_entries(), 2 * q.size() + 65)
        << "round " << round << ": dead entries accumulate";
  }
  EXPECT_EQ(q.size(), live.size());
  EXPECT_LE(q.heap_entries(), 2 * q.size() + 65);
}

TEST(EventQueue, CompactionPreservesOrderAndLiveEvents) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    ids.push_back(q.push(t, [] {}));
  }
  // Cancel enough to trigger compaction several times over.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 2 == 0) {
      EXPECT_TRUE(q.cancel(ids[i]));
    }
  }
  EXPECT_EQ(q.size(), 500u);
  double last = -1.0;
  std::size_t popped = 0;
  while (!q.empty()) {
    const double t = q.next_time();
    EXPECT_LE(last, t);
    last = t;
    q.pop();
    ++popped;
  }
  EXPECT_EQ(popped, 500u);
}

TEST(EventQueue, RejectsInfiniteTimes) {
  EventQueue q;
  EXPECT_THROW(q.push(std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_THROW(q.push(-std::numeric_limits<double>::infinity(), [] {}),
               std::invalid_argument);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PopAfterDrainThrowsAndQueueStaysUsable) {
  EventQueue q;
  q.push(1.0, [] {});
  q.pop();
  EXPECT_THROW((void)q.pop(), std::logic_error);
  EXPECT_THROW((void)q.next_time(), std::logic_error);
  // The queue must remain fully usable after the failed pop.
  int fired = 0;
  q.push(2.0, [&] { ++fired; });
  q.pop().action();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StaleIdAfterSlotReuseCancelsNothing) {
  // The popped event's slot is recycled by the next push; the stale handle
  // must not cancel the new occupant (generation check).
  EventQueue q;
  const EventId stale = q.push(1.0, [] {});
  q.pop();
  int fired = 0;
  const EventId fresh = q.push(2.0, [&] { ++fired; });
  EXPECT_EQ(stale.slot, fresh.slot);  // the pool really did recycle the slot
  EXPECT_FALSE(q.cancel(stale));
  EXPECT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, DefaultEventIdNeverCancels) {
  EventQueue q;
  q.push(1.0, [] {});
  EXPECT_FALSE(q.cancel(EventId{}));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, FreeListReusePreventsPoolGrowth) {
  // One million schedule/cancel cycles against a fixed backdrop of live
  // timers: the slot pool and the heap must both stay flat (the
  // zero-allocation steady-state contract).
  EventQueue q;
  for (int i = 0; i < 100; ++i) q.push(1e9 + i, [] {});
  {
    const EventId id = q.push(1e6, [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  const std::size_t slots_high_water = q.slot_capacity();
  const std::uint64_t heap_allocs_before = EventCallback::heap_allocations();
  for (int cycle = 0; cycle < 1000000; ++cycle) {
    const EventId id = q.push(1e6 + cycle, [] {});
    ASSERT_TRUE(q.cancel(id));
  }
  EXPECT_EQ(q.slot_capacity(), slots_high_water) << "slot pool grew";
  EXPECT_LE(q.heap_entries(), 2 * q.size() + 65) << "heap garbage grew";
  EXPECT_EQ(EventCallback::heap_allocations(), heap_allocs_before)
      << "a callback spilled to the heap";
  EXPECT_EQ(q.size(), 100u);
}

TEST(EventCallback, InlineCapturesNeverTouchTheHeap) {
  const std::uint64_t before = EventCallback::heap_allocations();
  int fired = 0;
  // Timer-sized ([this]) and delivery-sized ([this, message]) captures.
  EventCallback small([&fired] { ++fired; });
  struct {
    int* p;
    std::uint64_t body[4] = {1, 2, 3, 4};
  } payload{&fired};
  EventCallback large([payload] { *payload.p += int(payload.body[0]); });
  small();
  large();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(EventCallback::heap_allocations(), before);
}

TEST(EventCallback, OversizedCapturesSpillToHeapAndStillRun) {
  const std::uint64_t before = EventCallback::heap_allocations();
  std::array<std::uint64_t, 16> big{};  // 128 bytes > kInlineCapacity
  big[15] = 7;
  std::uint64_t out = 0;
  EventCallback cb([big, &out] { out = big[15]; });
  EXPECT_EQ(EventCallback::heap_allocations(), before + 1);
  EventCallback moved = std::move(cb);  // heap case: pointer relocation
  moved();
  EXPECT_EQ(out, 7u);
}

TEST(EventCallback, MoveTransfersOwnershipExactlyOnce) {
  int fired = 0;
  EventCallback a([&fired] { ++fired; });
  EventCallback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(fired, 1);
}

TEST(EventCallback, DestructorRunsCaptureDestructors) {
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    EventCallback cb([token] { (void)*token; });
    token.reset();
    EXPECT_FALSE(watch.expired());  // the callback keeps the capture alive
  }
  EXPECT_TRUE(watch.expired()) << "capture leaked";
}

// ------------------------------------------------ batched expiry drain --

TEST(EventQueue, DrainDueCollectsDueEventsInExactPopOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(5.0, [&] { order.push_back(50); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(3.0, [&] { order.push_back(3); });
  q.push(8.0, [&] { order.push_back(80); });
  q.push(1.0, [&] { order.push_back(2); });  // tie: insertion order
  std::vector<DrainedEvent> due;
  q.drain_due(3.0, due);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_DOUBLE_EQ(due[0].time, 1.0);
  EXPECT_DOUBLE_EQ(due[1].time, 1.0);
  EXPECT_DOUBLE_EQ(due[2].time, 3.0);
  EXPECT_EQ(q.size(), 5u);  // drained events stay live until taken
  for (const DrainedEvent& event : due) {
    EventCallback action;
    ASSERT_TRUE(q.take_drained(event, action));
    action();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.size(), 2u);
  q.pop().action();
  q.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 50, 80}));
}

TEST(EventQueue, DrainedEventsAreInvisibleUntilRequeued) {
  EventQueue q;
  int fired = 0;
  q.push(1.0, [&] { fired = 1; });
  q.push(5.0, [] {});
  std::vector<DrainedEvent> due;
  q.drain_due(2.0, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);  // the drained event is gone...
  Time ready = 0.0;
  ASSERT_TRUE(q.peek_ready(ready));
  EXPECT_DOUBLE_EQ(ready, 5.0);
  q.requeue_drained(due[0]);  // ...until put back, untouched
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
  q.pop().action();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelOfADrainedEventPreventsDispatch) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(1.0, [&] { fired += 1; });
  q.push(2.0, [&] { fired += 10; });
  std::vector<DrainedEvent> due;
  q.drain_due(3.0, due);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_TRUE(q.cancel(id));
  EventCallback action;
  EXPECT_FALSE(q.take_drained(due[0], action));  // cancelled mid-slice
  ASSERT_TRUE(q.take_drained(due[1], action));
  action();
  EXPECT_EQ(fired, 10);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleDrainedHandleAfterSlotReuseIsRejected) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.push(1.0, [&] { fired = 1; });
  std::vector<DrainedEvent> due;
  q.drain_due(2.0, due);
  ASSERT_EQ(due.size(), 1u);
  ASSERT_TRUE(q.cancel(id));
  q.push(7.0, [&] { fired = 7; });  // reuses the released slot
  EventCallback action;
  EXPECT_FALSE(q.take_drained(due[0], action));  // stale seq
  q.requeue_drained(due[0]);                     // must be a no-op
  EXPECT_EQ(q.size(), 1u);
  EXPECT_DOUBLE_EQ(q.next_time(), 7.0);
  q.pop().action();
  EXPECT_EQ(fired, 7);
}

TEST(EventQueue, DrainIncludesTheHorizonAndAppendsToTheBuffer) {
  EventQueue q;
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  std::vector<DrainedEvent> due;
  q.drain_due(1.0, due);  // t == horizon is due
  ASSERT_EQ(due.size(), 1u);
  q.drain_due(2.0, due);  // appends, never clears
  ASSERT_EQ(due.size(), 2u);
  EXPECT_DOUBLE_EQ(due[0].time, 1.0);
  EXPECT_DOUBLE_EQ(due[1].time, 2.0);
  EventCallback action;
  EXPECT_TRUE(q.take_drained(due[0], action));
  EXPECT_TRUE(q.take_drained(due[1], action));
  EXPECT_TRUE(q.empty());
  Time ready = 0.0;
  EXPECT_FALSE(q.peek_ready(ready));
}

TEST(EventQueue, EventsPushedMidSliceMergeAheadOfDrainedOnes) {
  // The run_slice pattern: a drained event's callback schedules new work
  // BEFORE the next drained event's time; the dispatcher peeks the queue
  // and pops it first.
  EventQueue q;
  std::vector<double> order;
  q.push(1.0, [&] { order.push_back(1.0); });
  q.push(2.0, [&] { order.push_back(2.0); });
  std::vector<DrainedEvent> due;
  q.drain_due(2.0, due);
  ASSERT_EQ(due.size(), 2u);
  EventCallback action;
  ASSERT_TRUE(q.take_drained(due[0], action));
  action();
  q.push(1.5, [&] { order.push_back(1.5); });  // scheduled "by" event 1.0
  Time ready = 0.0;
  ASSERT_TRUE(q.peek_ready(ready));
  ASSERT_LT(ready, due[1].time);
  q.pop().action();
  ASSERT_TRUE(q.take_drained(due[1], action));
  action();
  EXPECT_EQ(order, (std::vector<double>{1.0, 1.5, 2.0}));
}

TEST(EventQueue, DrainCyclesKeepTheSlotPoolFlat) {
  // The sliced-farm steady state: drain a batch, take it, schedule the
  // next batch -- forever, against a backdrop of live timers, without
  // growing the slot pool or touching the heap.
  EventQueue q;
  for (int i = 0; i < 16; ++i) q.push(1e9 + i, [] {});
  for (int i = 0; i < 16; ++i) q.push(static_cast<double>(i), [] {});
  std::vector<DrainedEvent> due;
  q.drain_due(16.0, due);
  for (const DrainedEvent& event : due) {
    EventCallback action;
    ASSERT_TRUE(q.take_drained(event, action));
  }
  const std::size_t slots_high_water = q.slot_capacity();
  const std::uint64_t heap_allocs_before = EventCallback::heap_allocations();
  double now = 16.0;
  for (int cycle = 0; cycle < 100000; ++cycle) {
    for (int i = 0; i < 16; ++i) q.push(now + i, [] {});
    due.clear();
    q.drain_due(now + 16.0, due);
    ASSERT_EQ(due.size(), 16u);
    for (const DrainedEvent& event : due) {
      EventCallback action;
      ASSERT_TRUE(q.take_drained(event, action));
    }
    now += 16.0;
  }
  EXPECT_EQ(q.slot_capacity(), slots_high_water) << "slot pool grew";
  EXPECT_EQ(EventCallback::heap_allocations(), heap_allocs_before)
      << "a callback spilled to the heap";
  EXPECT_EQ(q.size(), 16u);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  std::vector<double> popped;
  for (int i = 0; i < 1000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.push(t, [&popped, t] { popped.push_back(t); });
  }
  while (!q.empty()) q.pop().action();
  for (std::size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
}

}  // namespace
}  // namespace sigcomp::sim
