#include "markov/dtmc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sigcomp::markov {

DenseMatrix embedded_jump_matrix(const Ctmc& chain) {
  const std::size_t n = chain.num_states();
  DenseMatrix p(n, n);
  for (StateId s = 0; s < n; ++s) {
    const double exit = chain.exit_rate(s);
    if (exit <= 0.0) {
      p(s, s) = 1.0;  // absorbing
      continue;
    }
    for (StateId t = 0; t < n; ++t) {
      if (t == s) continue;
      const double r = chain.rate(s, t);
      if (r > 0.0) p(s, t) = r / exit;
    }
  }
  return p;
}

DenseMatrix uniformized_matrix(const Ctmc& chain, double lambda) {
  const std::size_t n = chain.num_states();
  double max_exit = 0.0;
  for (StateId s = 0; s < n; ++s) max_exit = std::max(max_exit, chain.exit_rate(s));
  if (!(lambda >= max_exit) || lambda <= 0.0) {
    throw std::invalid_argument(
        "uniformized_matrix: lambda must be >= the maximum exit rate");
  }
  DenseMatrix p = chain.generator();
  p.scale(1.0 / lambda);
  for (std::size_t i = 0; i < n; ++i) p(i, i) += 1.0;
  return p;
}

double stochastic_violation(const DenseMatrix& p) {
  double worst = 0.0;
  for (std::size_t r = 0; r < p.rows(); ++r) {
    worst = std::max(worst, std::abs(p.row_sum(r) - 1.0));
    for (std::size_t c = 0; c < p.cols(); ++c) {
      if (p(r, c) < 0.0) worst = std::max(worst, -p(r, c));
      if (p(r, c) > 1.0) worst = std::max(worst, p(r, c) - 1.0);
    }
  }
  return worst;
}

std::vector<double> dtmc_stationary_power(const DenseMatrix& p, double tol,
                                          std::size_t max_iters) {
  if (!p.is_square() || p.rows() == 0) {
    throw std::invalid_argument("dtmc_stationary_power: matrix must be square");
  }
  const std::size_t n = p.rows();
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    std::vector<double> next = p.left_multiply(pi);
    double total = 0.0;
    for (double v : next) total += v;
    for (double& v : next) v /= total;
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta = std::max(delta, std::abs(next[i] - pi[i]));
    pi = std::move(next);
    if (delta < tol) return pi;
  }
  throw std::runtime_error("dtmc_stationary_power: did not converge");
}

std::vector<double> ctmc_stationary_via_jump_chain(const Ctmc& chain) {
  const DenseMatrix jump = embedded_jump_matrix(chain);
  const std::vector<double> pj = dtmc_stationary_power(jump, 1e-13, 500000);
  std::vector<double> pi(pj.size(), 0.0);
  double total = 0.0;
  for (StateId s = 0; s < chain.num_states(); ++s) {
    const double exit = chain.exit_rate(s);
    if (exit <= 0.0) {
      throw std::invalid_argument(
          "ctmc_stationary_via_jump_chain: chain must have no absorbing state");
    }
    pi[s] = pj[s] / exit;
    total += pi[s];
  }
  for (double& v : pi) v /= total;
  return pi;
}

}  // namespace sigcomp::markov
