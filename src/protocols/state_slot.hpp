// The mechanism-driven per-node state core shared by every protocol node.
//
// The paper's central claim is that the five protocols are nothing but
// combinations of mechanism switches (refresh, soft-state timeout, explicit
// removal, reliable trigger/removal, failure detector).  This header holds
// the two primitives those switches act on, shared by the single-hop
// engines (protocols/engine.hpp) and the tree nodes
// (protocols/multi_hop_node.hpp) alike:
//
//  * StateSlot -- the one piece of signaling state plus the soft-state
//    timeout guarding it, driven by MechanismSet (a node whose mechanisms
//    lack soft_timeout simply never arms one);
//  * ReliableSlot -- the reliable-transmission mechanism: at most one
//    outstanding message per link direction, retransmitted until
//    acknowledged.
//
// Neither primitive decides protocol policy: owners sequence the calls
// (install, ACK emission, timeout arming, removal) so that wire behavior --
// and therefore the pinned golden traces -- is theirs alone.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "core/protocol.hpp"
#include "protocols/message.hpp"
#include "sim/channel.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp::protocols {

/// Timer configuration shared by the engines.  `dist` selects deterministic
/// (real-protocol) or exponential (model-assumption) timer draws.
struct TimerSettings {
  sim::Distribution dist = sim::Distribution::kDeterministic;  ///< timer law
  double refresh = 5.0;   ///< R
  double timeout = 15.0;  ///< T
  double retrans = 0.12;  ///< Gamma (initial value when backing off)
  /// Staged retransmission (Pan & Schulzrinne's staged timers, cited by the
  /// paper): each unacknowledged retransmission multiplies the timer by
  /// this factor, capped at `backoff_cap * retrans`.  1.0 = fixed timer.
  double backoff = 1.0;
  double backoff_cap = 64.0;  ///< cap multiplier of the staged timer
};

/// The channel type every protocol node sends Messages through.
using MessageChannel = sim::Channel<Message>;

/// One node's copy of the signaling state plus the soft-state timeout that
/// guards it.  Lifecycle events map to methods: install/refresh (`set` +
/// `arm_timeout`), soft-state expiry (the internal timer, reported through
/// `on_expire`), and removal -- explicit, reliable or silent -- through
/// `clear`.  Whether a timeout exists at all comes from the MechanismSet,
/// not from the owner's protocol branch; a slot that is never armed (the
/// sender's authoritative root copy) is plain storage.
class StateSlot {
 public:
  /// `on_expire` (may be null) fires after a soft-state timeout cleared the
  /// value; the owner emits its removal notification there.
  StateSlot(sim::Simulator& sim, sim::Rng& rng, MechanismSet mech,
            const TimerSettings& timers, std::function<void()> on_expire);

  StateSlot(const StateSlot&) = delete;             ///< non-copyable
  StateSlot& operator=(const StateSlot&) = delete;  ///< non-copyable

  /// Stores `value` (install or refresh).  Deliberately does NOT touch the
  /// timeout: owners call arm_timeout() at their protocol's arming point so
  /// event order on the wire is unchanged by the extraction.
  void set(std::int64_t value) noexcept { value_ = value; }

  /// (Re)arms the soft-state timeout with a fresh timer draw; no-op unless
  /// the mechanism set includes soft_timeout.
  void arm_timeout();

  /// Cancels the pending timeout, if any.
  void cancel_timeout();

  /// Removes the value and cancels the timeout.  Returns true when a value
  /// was actually held -- callers use this to suppress duplicate signaling
  /// (a retransmitted removal must not re-notify).
  bool clear();

  /// True when the held value equals `v` (duplicate-trigger detection).
  [[nodiscard]] bool holds(std::int64_t v) const noexcept {
    return value_ && *value_ == v;
  }

  /// The held value (nullopt when no state is installed).
  [[nodiscard]] std::optional<std::int64_t> value() const noexcept {
    return value_;
  }

  /// Number of soft-state timeout expirations so far.
  [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }

 private:
  void on_timeout();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  MechanismSet mech_;
  TimerSettings timers_;
  std::function<void()> on_expire_;

  std::optional<std::int64_t> value_;
  std::uint64_t timeouts_ = 0;
  std::optional<sim::EventId> timeout_timer_;
};

/// Per-direction reliable transmission slot: at most one outstanding message
/// per link direction; a newer reliable send supersedes the pending one
/// (it always carries more recent information).
class ReliableSlot {
 public:
  /// `channel` may be null only if send() is never called.
  ReliableSlot(sim::Simulator& sim, sim::Rng& rng, sim::Distribution dist,
               double retrans_timer, MessageChannel* channel);

  /// Sends `msg` reliably: transmit now, retransmit until acknowledged.
  void send(Message msg);

  /// Processes an acknowledgment sequence number; returns true if it matched
  /// the outstanding message (which is then considered delivered).
  bool acknowledge(std::uint64_t seq);

  /// Drops any outstanding message.
  void cancel();

  /// True while a sent message awaits its acknowledgment.
  [[nodiscard]] bool outstanding() const noexcept { return outstanding_; }

 private:
  void arm();
  void on_timer();

  sim::Simulator& sim_;
  sim::Rng& rng_;
  sim::Distribution dist_;
  double retrans_timer_;
  MessageChannel* channel_;
  Message pending_{};
  bool outstanding_ = false;
  std::optional<sim::EventId> timer_;
};

}  // namespace sigcomp::protocols
