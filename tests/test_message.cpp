#include "protocols/message.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sigcomp::protocols {
namespace {

TEST(Message, TypeNamesAreUniqueAndNonEmpty) {
  std::set<std::string_view> names;
  for (const MessageType t :
       {MessageType::kTrigger, MessageType::kRefresh, MessageType::kRemove,
        MessageType::kAckTrigger, MessageType::kAckRemove,
        MessageType::kAckNotice, MessageType::kNotice, MessageType::kTeardown}) {
    const std::string_view name = to_string(t);
    EXPECT_FALSE(name.empty());
    EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(Message, EqualityComparesAllFields) {
  const Message a{MessageType::kTrigger, 5, 1, 2};
  Message b = a;
  EXPECT_EQ(a, b);
  b.value = 6;
  EXPECT_NE(a, b);
  b = a;
  b.seq = 9;
  EXPECT_NE(a, b);
  b = a;
  b.epoch = 3;
  EXPECT_NE(a, b);
  b = a;
  b.type = MessageType::kRefresh;
  EXPECT_NE(a, b);
}

TEST(Message, DefaultsAreSane) {
  const Message m;
  EXPECT_EQ(m.type, MessageType::kTrigger);
  EXPECT_EQ(m.value, 0);
  EXPECT_EQ(m.seq, 0u);
  EXPECT_EQ(m.epoch, 0u);
}

}  // namespace
}  // namespace sigcomp::protocols
