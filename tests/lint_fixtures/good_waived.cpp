// Fixture: every violation carries a documented waiver -- zero findings
// expected, which proves the escape hatch suppresses exactly as documented
// (same-line form, preceding-line form, wrapped reasons, multi-rule form).
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <unordered_map>

struct WaivedRegistry {
  // sigcomp-lint: allow(unordered-container) lookup-only index; never
  // iterated, so hash order cannot leak into any result
  std::unordered_map<std::string, int> by_name_;

  // sigcomp-lint: allow(raw-atomic) diagnostics-only progress counter read
  // by no simulation path; results cannot depend on it
  std::atomic<int> progress_{0};

  int draw() {
    return rand();  // sigcomp-lint: allow(libc-rand) same-line waiver form
  }

  // One line violating two rules, shielded by one multi-rule waiver:
  // sigcomp-lint: allow(wall-clock, thread-sleep) diagnostics-only helper;
  // deliberately naps until a wall-clock instant, off every result path
  void nap() { std::this_thread::sleep_until(std::chrono::system_clock::now()); }
};

// Preceding-line waiver with a reason wrapped across comment lines:
// sigcomp-lint: allow(libc-rand) seeding a diagnostics-only path that is
// never read by simulation code
static int diag = rand();
