#include "protocols/multi_hop_run.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analytic/multi_hop.hpp"

namespace sigcomp::protocols {
namespace {

MultiHopParams small_chain() {
  MultiHopParams p = MultiHopParams::reservation_defaults();
  p.hops = 5;
  return p;
}

MultiHopSimOptions quick_options(std::uint64_t seed = 1) {
  MultiHopSimOptions o;
  o.seed = seed;
  o.duration = 4000.0;
  return o;
}

TEST(MultiHopSim, ProducesValidMetricsForSupportedProtocols) {
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const MultiHopSimResult result =
        run_multi_hop(kind, small_chain(), quick_options());
    EXPECT_GT(result.metrics.inconsistency, 0.0) << to_string(kind);
    EXPECT_LT(result.metrics.inconsistency, 1.0) << to_string(kind);
    EXPECT_GT(result.messages, 0u) << to_string(kind);
    EXPECT_EQ(result.hop_inconsistency.size(), 5u) << to_string(kind);
    EXPECT_DOUBLE_EQ(result.duration, 4000.0) << to_string(kind);
  }
}

TEST(MultiHopSim, DegenerateGilbertElliottReproducesIidBitForBit) {
  const MultiHopParams iid = small_chain();
  MultiHopParams ge = iid;
  ge.loss_model = sim::LossModel::kGilbertElliott;
  ge.ge_p_gb = iid.loss;
  ge.ge_p_bg = 1.0 - iid.loss;
  ge.ge_loss_bad = 1.0;
  ge.ge_loss_good = 0.0;
  const MultiHopSimResult a =
      run_multi_hop(ProtocolKind::kSS, iid, quick_options(17));
  const MultiHopSimResult b =
      run_multi_hop(ProtocolKind::kSS, ge, quick_options(17));
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.metrics.inconsistency, b.metrics.inconsistency);
  EXPECT_EQ(a.relay_timeouts, b.relay_timeouts);
}

TEST(MultiHopSim, PerHopBurstyLossIsHeterogeneous) {
  // One bursty hop in an otherwise iid chain: the chain still runs, the
  // bursty hop's mean loss is unchanged, and making *every* hop bursty
  // degrades soft state at equal average loss.
  MultiHopParams base = small_chain();
  base.loss = 0.05;
  analytic::HeteroMultiHopParams one_bursty =
      analytic::HeteroMultiHopParams::from_homogeneous(base);
  one_bursty.set_hop_bursty(2, 10.0);
  one_bursty.validate();
  EXPECT_EQ(one_bursty.loss_process.size(), 5u);
  EXPECT_NEAR(one_bursty.hop_loss_config(2).mean_loss(), 0.05, 1e-12);
  EXPECT_EQ(one_bursty.hop_loss_config(0).model, sim::LossModel::kIid);

  MultiHopSimOptions options = quick_options(5);
  options.duration = 20000.0;
  const double iid_inconsistency =
      run_multi_hop(ProtocolKind::kSS, base, options).metrics.inconsistency;
  const double all_bursty =
      run_multi_hop(ProtocolKind::kSS, base.with_bursty_loss(10.0), options)
          .metrics.inconsistency;
  EXPECT_GT(all_bursty, 1.3 * iid_inconsistency);

  // End-to-end through the heterogeneous overload: one bursty hop sits
  // between the all-iid and all-bursty chains.
  const MultiHopSimResult mixed =
      run_multi_hop(ProtocolKind::kSS, one_bursty, options);
  EXPECT_EQ(mixed.hop_inconsistency.size(), 5u);
  EXPECT_GT(mixed.metrics.inconsistency, iid_inconsistency);
  EXPECT_LT(mixed.metrics.inconsistency, all_bursty);
}

TEST(MultiHopSim, ExplicitRemovalProtocolsRunAndMatchTheirBaseChain) {
  // The harness never removes state (infinite session), so the
  // explicit-removal variants must replay their base protocol bit-for-bit:
  // the removal mechanisms are pure dead weight until someone leaves.
  const MultiHopSimResult ss =
      run_multi_hop(ProtocolKind::kSS, small_chain(), quick_options());
  const MultiHopSimResult sser =
      run_multi_hop(ProtocolKind::kSSER, small_chain(), quick_options());
  EXPECT_EQ(sser.messages, ss.messages);
  EXPECT_EQ(sser.metrics.inconsistency, ss.metrics.inconsistency);
  const MultiHopSimResult ssrt =
      run_multi_hop(ProtocolKind::kSSRT, small_chain(), quick_options());
  const MultiHopSimResult ssrtr =
      run_multi_hop(ProtocolKind::kSSRTR, small_chain(), quick_options());
  EXPECT_EQ(ssrtr.messages, ssrt.messages);
  EXPECT_EQ(ssrtr.metrics.inconsistency, ssrt.metrics.inconsistency);
}

TEST(MultiHopSim, RejectsNonPositiveDuration) {
  MultiHopSimOptions options;
  options.duration = 0.0;
  EXPECT_THROW((void)run_multi_hop(ProtocolKind::kSS, small_chain(), options),
               std::invalid_argument);
}

TEST(MultiHopSim, SameSeedIsReproducible) {
  const MultiHopSimResult a =
      run_multi_hop(ProtocolKind::kSSRT, small_chain(), quick_options(4));
  const MultiHopSimResult b =
      run_multi_hop(ProtocolKind::kSSRT, small_chain(), quick_options(4));
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_DOUBLE_EQ(a.metrics.inconsistency, b.metrics.inconsistency);
}

TEST(MultiHopSim, FarHopsAreWorseOff) {
  // Fig. 17's monotone trend; compare first vs last hop with margin to
  // absorb noise.
  for (const ProtocolKind kind : kMultiHopProtocols) {
    MultiHopSimOptions options = quick_options(8);
    options.duration = 8000.0;
    const MultiHopSimResult result = run_multi_hop(kind, small_chain(), options);
    EXPECT_GT(result.hop_inconsistency.back(), result.hop_inconsistency.front())
        << to_string(kind);
  }
}

TEST(MultiHopSim, SsIsLeastConsistent) {
  MultiHopSimOptions options = quick_options(10);
  options.duration = 8000.0;
  const double ss =
      run_multi_hop(ProtocolKind::kSS, small_chain(), options).metrics.inconsistency;
  const double ssrt =
      run_multi_hop(ProtocolKind::kSSRT, small_chain(), options).metrics.inconsistency;
  const double hs =
      run_multi_hop(ProtocolKind::kHS, small_chain(), options).metrics.inconsistency;
  EXPECT_GT(ss, ssrt);
  EXPECT_GT(ss, hs);
}

TEST(MultiHopSim, HardStateSendsFarFewerMessages) {
  const MultiHopSimResult ss =
      run_multi_hop(ProtocolKind::kSS, small_chain(), quick_options(12));
  const MultiHopSimResult hs =
      run_multi_hop(ProtocolKind::kHS, small_chain(), quick_options(12));
  EXPECT_LT(hs.messages, ss.messages / 2);
}

TEST(MultiHopSim, SoftStateTimeoutsOccurUnderLoss) {
  MultiHopParams p = small_chain();
  p.loss = 0.3;
  MultiHopSimOptions options = quick_options(14);
  options.duration = 20000.0;
  const MultiHopSimResult result = run_multi_hop(ProtocolKind::kSS, p, options);
  EXPECT_GT(result.relay_timeouts, 0u);
}

TEST(MultiHopSim, HardStateNeverTimesOut) {
  const MultiHopSimResult result =
      run_multi_hop(ProtocolKind::kHS, small_chain(), quick_options(16));
  EXPECT_EQ(result.relay_timeouts, 0u);
}

TEST(MultiHopSim, LossFreeChainIsNearlyAlwaysConsistent) {
  MultiHopParams p = small_chain();
  p.loss = 0.0;
  const MultiHopSimResult result =
      run_multi_hop(ProtocolKind::kSS, p, quick_options(18));
  // Only update propagation (5 hops x 30 ms every ~60 s) is inconsistent.
  EXPECT_LT(result.metrics.inconsistency, 0.01);
}

TEST(MultiHopSim, HsRecoversFromFalseExternalSignals) {
  MultiHopParams p = small_chain();
  p.false_signal_rate = 1.0 / 500.0;  // frequent false signals
  MultiHopSimOptions options = quick_options(20);
  options.duration = 10000.0;
  const MultiHopSimResult result = run_multi_hop(ProtocolKind::kHS, p, options);
  // Signals happen (~20 per relay) yet consistency recovers each time.
  EXPECT_GT(result.metrics.inconsistency, 0.0);
  EXPECT_LT(result.metrics.inconsistency, 0.2);
}

TEST(MultiHopSimReplicated, ProducesConfidenceIntervals) {
  MultiHopSimOptions options = quick_options();
  options.duration = 1500.0;
  const MultiHopReplicatedResult result =
      run_multi_hop_replicated(ProtocolKind::kSS, small_chain(), options, 6);
  EXPECT_EQ(result.replications, 6u);
  EXPECT_GT(result.inconsistency.mean, 0.0);
  EXPECT_GT(result.inconsistency.half_width, 0.0);
  EXPECT_GT(result.message_rate.mean, 0.0);
  EXPECT_GE(result.last_hop_inconsistency.mean, result.inconsistency.mean * 0.5);
}

TEST(MultiHopSimReplicated, CoversTheAnalyticModel) {
  MultiHopParams p = small_chain();
  MultiHopSimOptions options = quick_options(40);
  options.duration = 6000.0;
  const MultiHopReplicatedResult sim =
      run_multi_hop_replicated(ProtocolKind::kSS, p, options, 8);
  const double model =
      analytic::MultiHopModel(ProtocolKind::kSS, p).inconsistency();
  // Within 4 CI half-widths or 30% relative.
  const double tolerance =
      std::max(4.0 * sim.inconsistency.half_width, 0.30 * model);
  EXPECT_NEAR(sim.inconsistency.mean, model, tolerance);
}

TEST(MultiHopSimReplicated, ZeroReplicationsRejected) {
  EXPECT_THROW((void)run_multi_hop_replicated(ProtocolKind::kSS, small_chain(),
                                              MultiHopSimOptions{}, 0),
               std::invalid_argument);
}

TEST(MultiHopSim, SingleHopChainWorks) {
  MultiHopParams p = small_chain();
  p.hops = 1;
  const MultiHopSimResult result =
      run_multi_hop(ProtocolKind::kSSRT, p, quick_options(22));
  EXPECT_EQ(result.hop_inconsistency.size(), 1u);
  EXPECT_GT(result.messages, 0u);
}

}  // namespace
}  // namespace sigcomp::protocols
