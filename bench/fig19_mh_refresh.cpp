// Figure 19: multi-hop inconsistency ratio (a) and average signaling
// message rate (b) versus the soft-state refresh timer R (T = 3R), K = 20.
// HS uses no refresh and appears as a flat line.
//
// Usage: fig19_mh_refresh [--csv PATH]
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  exp::Table table(
      "Fig. 19: multi-hop I and message rate vs refresh timer R (T = 3R, K = 20)",
      {"refresh_s", "I(SS)", "I(SS+RT)", "I(HS)", "rate(SS)", "rate(SS+RT)",
       "rate(HS)"});

  for (const double refresh : exp::log_space(0.1, 1000.0, 17)) {
    MultiHopParams p = MultiHopParams::reservation_defaults();
    p.refresh_timer = refresh;
    p.timeout_timer = 3.0 * refresh;
    std::vector<exp::Cell> row{refresh};
    std::vector<double> rates;
    for (const ProtocolKind kind : kPaperMultiHopProtocols) {
      const Metrics m = evaluate_analytic(kind, p);
      row.emplace_back(m.inconsistency);
      rates.push_back(m.raw_message_rate);
    }
    for (const double rate : rates) row.emplace_back(rate);
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) table.write_csv_file(csv);
  return 0;
}
