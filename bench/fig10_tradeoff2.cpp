// Figure 10: the inconsistency/overhead tradeoff traced by (a) varying the
// state update interval 1/lambda_u and (b) varying the channel delay D
// (Gamma = 4D), single-hop defaults otherwise.
//
// Usage: fig10_tradeoff2 [--csv PATH] (update sweep; delay sweep goes to
// PATH + ".delay.csv")
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

namespace {

std::vector<sigcomp::exp::Cell> tradeoff_row(double x,
                                             const sigcomp::SingleHopParams& p) {
  std::vector<sigcomp::exp::Cell> row{x};
  for (const sigcomp::ProtocolKind kind : sigcomp::kAllProtocols) {
    const sigcomp::Metrics m = sigcomp::evaluate_analytic(kind, p);
    row.emplace_back(m.inconsistency);
    row.emplace_back(m.message_rate);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sigcomp;
  const std::vector<std::string> headers = {
      "x",        "I(SS)",    "M(SS)",  "I(SS+ER)", "M(SS+ER)", "I(SS+RT)",
      "M(SS+RT)", "I(SS+RTR)", "M(SS+RTR)", "I(HS)", "M(HS)"};

  exp::Table update_table(
      "Fig. 10(a): tradeoff varying update interval 1/lu (x = interval s)",
      headers);
  for (const double interval : exp::log_space(2.0, 2000.0, 13)) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.update_rate = 1.0 / interval;
    update_table.add_row(tradeoff_row(interval, p));
  }
  update_table.print(std::cout);
  std::cout << '\n';

  exp::Table delay_table(
      "Fig. 10(b): tradeoff varying channel delay D (x = delay s, G = 4D)",
      headers);
  for (const double delay : exp::log_space(0.003, 0.3, 13)) {
    delay_table.add_row(tradeoff_row(
        delay, SingleHopParams::kazaa_defaults().with_delay_scaled_retrans(delay)));
  }
  delay_table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) {
    update_table.write_csv_file(csv);
    delay_table.write_csv_file(csv + ".delay.csv");
  }
  return 0;
}
