// Figure 5: inconsistency ratio versus (a) channel loss rate pl in [0, 0.3]
// and (b) one-way channel delay D in (0, 1] s (with Gamma = 4D), for all
// five protocols at single-hop defaults.
//
// Usage: fig05_loss_delay [--csv PATH]  (CSV gets the loss sweep; the delay
// sweep goes to PATH with a ".delay.csv" suffix)
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  exp::Table loss_table("Fig. 5(a): I vs signaling channel loss rate pl",
                        {"loss", "I(SS)", "I(SS+ER)", "I(SS+RT)", "I(SS+RTR)",
                         "I(HS)"});
  for (const double loss : exp::lin_space(0.0, 0.30, 13)) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.loss = loss;
    std::vector<exp::Cell> row{loss};
    for (const ProtocolKind kind : kAllProtocols) {
      row.emplace_back(evaluate_analytic(kind, p).inconsistency);
    }
    loss_table.add_row(std::move(row));
  }
  loss_table.print(std::cout);
  std::cout << '\n';

  exp::Table delay_table(
      "Fig. 5(b): I vs signaling channel delay D (Gamma = 4D)",
      {"delay_s", "I(SS)", "I(SS+ER)", "I(SS+RT)", "I(SS+RTR)", "I(HS)"});
  for (const double delay : exp::lin_space(0.05, 1.0, 20)) {
    const SingleHopParams p =
        SingleHopParams::kazaa_defaults().with_delay_scaled_retrans(delay);
    std::vector<exp::Cell> row{delay};
    for (const ProtocolKind kind : kAllProtocols) {
      row.emplace_back(evaluate_analytic(kind, p).inconsistency);
    }
    delay_table.add_row(std::move(row));
  }
  delay_table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) {
    loss_table.write_csv_file(csv);
    delay_table.write_csv_file(csv + ".delay.csv");
  }
  return 0;
}
