#!/usr/bin/env python3
"""Fixture harness for sigcomp_lint.py (registered with ctest as
`lint_fixtures`).

Each fixture under tests/lint_fixtures/ is linted in isolation and its
findings are compared EXACTLY against the `LINT[<rule>]` markers embedded
in the file: a rule that fails to fire, fires on an unmarked line, or
fires with the wrong rule name fails the harness.  `good_*` fixtures carry
no markers and must come back clean -- that is the proof that each
documented waiver form suppresses its finding.

Markers are stripped (replaced by spaces, preserving columns) before the
linter runs, so a marker can never double as a waiver reason or otherwise
perturb what the linter sees.
"""

from __future__ import annotations

import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import sigcomp_lint  # noqa: E402

MARKER_RE = re.compile(r"LINT\[([A-Za-z0-9-]+)\]")


def expected_findings(text):
    expected = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        for m in MARKER_RE.finditer(line):
            expected.add((lineno, m.group(1)))
    return expected


def lint_fixture(path):
    """Returns the set of (line, rule) the linter reports for one fixture,
    linted from a marker-stripped copy in a temp dir."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    stripped = MARKER_RE.sub(lambda m: " " * len(m.group(0)), text)
    with tempfile.TemporaryDirectory() as tmp:
        copy = os.path.join(tmp, os.path.basename(path))
        with open(copy, "w", encoding="utf-8") as fh:
            fh.write(stripped)
        view = sigcomp_lint.load_view(copy, os.path.basename(path))
        unordered, rngs = sigcomp_lint.collect_declared_names([view])
        findings = sigcomp_lint.lint_file(
            view, unordered, rngs, registry_rel="core/rng_streams.hpp")
    return {(f.line, f.rule) for f in findings}, text


def main():
    root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    fixture_dir = os.path.join(root, "tests", "lint_fixtures")
    fixtures = sorted(
        f for f in os.listdir(fixture_dir) if f.endswith(".cpp"))
    if not fixtures:
        print("no fixtures found in", fixture_dir)
        return 1

    failures = 0
    for name in fixtures:
        path = os.path.join(fixture_dir, name)
        actual, text = lint_fixture(path)
        expected = expected_findings(text)
        if name.startswith("good_") and expected:
            print(f"FAIL {name}: good fixtures must not carry LINT markers")
            failures += 1
            continue
        if actual == expected:
            print(f"ok   {name}: {len(expected)} expected finding(s)")
            continue
        failures += 1
        print(f"FAIL {name}:")
        for line, rule in sorted(expected - actual):
            print(f"  missing: line {line} [{rule}] (marked, did not fire)")
        for line, rule in sorted(actual - expected):
            print(f"  extra:   line {line} [{rule}] (fired, not marked)")

    print(f"lint_fixtures: {len(fixtures)} fixture(s), {failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
