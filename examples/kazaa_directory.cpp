// The paper's motivating single-hop scenario (Sec. III-A): a peer-to-peer
// file-sharing directory.  Peers register their shared-file state with a
// supernode when they join and the supernode must forget them when they
// leave; stale entries make other peers contact departed peers ("fruitless
// queries" -- the application-specific inconsistency cost).
//
// This example compares the five signaling protocols across user-behaviour
// regimes (flash crowds of 5-minute sessions vs all-day peers) and converts
// the inconsistency ratio into fruitless queries per hour, assuming the
// supernode answers queries about a given peer at a fixed rate.
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/table.hpp"

namespace {

struct Regime {
  const char* name;
  double mean_session_s;
  double mean_update_interval_s;  // how often the shared folder changes
};

constexpr Regime kRegimes[] = {
    {"flash-crowd (5 min sessions)", 300.0, 60.0},
    {"casual (30 min sessions)", 1800.0, 20.0},
    {"dedicated (8 h sessions)", 8.0 * 3600.0, 20.0},
};

/// Queries per hour about one peer answered by the supernode.
constexpr double kQueriesPerHour = 120.0;

}  // namespace

int main() {
  using namespace sigcomp;

  std::cout << "Kazaa-style peer/supernode directory: stale state causes\n"
               "fruitless queries; signaling messages cost supernode capacity.\n\n";

  for (const Regime& regime : kRegimes) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.removal_rate = 1.0 / regime.mean_session_s;
    p.update_rate = 1.0 / regime.mean_update_interval_s;

    exp::Table table(std::string("regime: ") + regime.name,
                     {"protocol", "inconsistency I", "fruitless queries/h",
                      "signaling msgs/session", "integrated cost"});
    for (const auto& [kind, metrics] : compare_all(p)) {
      const double fruitless = metrics.inconsistency * kQueriesPerHour;
      const double msgs_per_session = metrics.message_rate / p.removal_rate;
      table.add_row({std::string(to_string(kind)), metrics.inconsistency,
                     fruitless, msgs_per_session, integrated_cost(metrics)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }

  std::cout
      << "Takeaways (matching the paper):\n"
         "  * Short sessions are the hard case: stale entries linger for the\n"
         "    whole timeout window, so SS misdirects queries far more often.\n"
         "  * An explicit LEAVE message (SS+ER) removes most of that cost for\n"
         "    about one extra message per session.\n"
         "  * Making LEAVE reliable (SS+RTR) matches hard-state consistency\n"
         "    without hard state's external failure-detection machinery.\n";
  return 0;
}
