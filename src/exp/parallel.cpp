#include "exp/parallel.hpp"

#include <stdexcept>
#include <string>
#include <string_view>

namespace sigcomp::exp {

namespace {

// SplitMix64 finalizer (Vigna); full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t replica_seed(std::uint64_t base_seed, std::uint64_t point_index,
                           std::uint64_t replica_index) noexcept {
  // Fold the triple through three dependent avalanche rounds; any change in
  // any input flips ~half the output bits, so consecutive points/replicas
  // get unrelated sim::Rng families.
  std::uint64_t h = mix64(base_seed);
  h = mix64(h ^ point_index);
  h = mix64(h ^ replica_index);
  return h;
}

std::size_t threads_from_args(int argc, const char* const* argv,
                              std::size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) != "--threads") continue;
    if (i + 1 >= argc) {
      throw std::invalid_argument("--threads requires a value");
    }
    const std::string value = argv[i + 1];
    long parsed = 0;
    std::size_t consumed = 0;
    try {
      parsed = std::stol(value, &consumed);
    } catch (const std::exception&) {
      throw std::invalid_argument("--threads must be a number, got '" + value +
                                  "'");
    }
    // stol accepts partial parses ("4x" -> 4); require the whole token.
    if (consumed != value.size()) {
      throw std::invalid_argument("--threads must be a number, got '" + value +
                                  "'");
    }
    if (parsed < 0) {
      throw std::invalid_argument("--threads must be >= 0, got " + value);
    }
    return static_cast<std::size_t>(parsed);
  }
  return fallback;
}

MetricsSummary summarize_replicas(const std::vector<Metrics>& replicas) {
  if (replicas.empty()) {
    throw std::invalid_argument("summarize_replicas: need >= 1 replica");
  }
  sim::RunningStats inconsistency, message_rate, raw_rate, session_length;
  sim::RunningStats trigger, refresh, explicit_removal, reliable_trigger,
      reliable_removal;
  for (const Metrics& m : replicas) {
    inconsistency.add(m.inconsistency);
    message_rate.add(m.message_rate);
    raw_rate.add(m.raw_message_rate);
    session_length.add(m.session_length);
    trigger.add(m.breakdown.trigger);
    refresh.add(m.breakdown.refresh);
    explicit_removal.add(m.breakdown.explicit_removal);
    reliable_trigger.add(m.breakdown.reliable_trigger);
    reliable_removal.add(m.breakdown.reliable_removal);
  }

  MetricsSummary out;
  out.replications = replicas.size();
  out.mean.inconsistency = inconsistency.mean();
  out.mean.message_rate = message_rate.mean();
  out.mean.raw_message_rate = raw_rate.mean();
  out.mean.session_length = session_length.mean();
  out.mean.breakdown = {trigger.mean(), refresh.mean(), explicit_removal.mean(),
                        reliable_trigger.mean(), reliable_removal.mean()};
  out.stddev.inconsistency = inconsistency.stddev();
  out.stddev.message_rate = message_rate.stddev();
  out.stddev.raw_message_rate = raw_rate.stddev();
  out.stddev.session_length = session_length.stddev();
  out.stddev.breakdown = {trigger.stddev(), refresh.stddev(),
                          explicit_removal.stddev(), reliable_trigger.stddev(),
                          reliable_removal.stddev()};
  out.inconsistency = sim::confidence_interval_95(inconsistency);
  out.message_rate = sim::confidence_interval_95(message_rate);
  out.raw_message_rate = sim::confidence_interval_95(raw_rate);
  return out;
}

}  // namespace sigcomp::exp
