// Correlated-event scenario engine: arrival-process sampling (flash crowd,
// diurnal), interior-relay crash/recovery semantics, shared-risk leave
// bursts, the zero-rate bit-identity lock, orphan-window censoring, farm
// determinism under a full scenario, teardown hygiene and option
// validation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "analytic/tree_paths.hpp"
#include "core/params.hpp"
#include "core/protocol.hpp"
#include "core/topology.hpp"
#include "exp/session_farm.hpp"
#include "protocols/membership.hpp"
#include "protocols/scenario.hpp"
#include "protocols/single_hop_run.hpp"
#include "protocols/topology.hpp"
#include "protocols/tree_run.hpp"
#include "sim/channel_process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sigcomp {
namespace {

using protocols::ArrivalConfig;
using protocols::ArrivalProcess;
using protocols::FailureConfig;
using protocols::ScenarioOptions;
using protocols::SharedRiskConfig;

// ------------------------------------------------- arrival process math --

TEST(ArrivalProcess, PoissonRateIsFlat) {
  const ArrivalProcess p(ArrivalConfig::poisson(), 0.25);
  EXPECT_DOUBLE_EQ(p.rate_at(0.0), 0.25);
  EXPECT_DOUBLE_EQ(p.rate_at(1e6), 0.25);
}

TEST(ArrivalProcess, FlashCrowdRateJumpsInsideTheStormOnly) {
  const ArrivalProcess p(ArrivalConfig::flash_crowd(100.0, 2.0, 50.0), 0.1);
  EXPECT_DOUBLE_EQ(p.rate_at(99.0), 0.1);
  EXPECT_DOUBLE_EQ(p.rate_at(100.0), 2.1);
  EXPECT_DOUBLE_EQ(p.rate_at(149.9), 2.1);
  EXPECT_DOUBLE_EQ(p.rate_at(150.0), 0.1);
}

TEST(ArrivalProcess, FlashCrowdInversionCrossesSegments) {
  // Base rate zero: arrivals can only land inside the storm window, so a
  // draw from before the storm must jump over the dead segment, and a draw
  // from after the storm must report "never".
  const ArrivalProcess p(ArrivalConfig::flash_crowd(10.0, 1.0, 5.0), 0.0);
  sim::Rng rng(3, 0);
  for (int i = 0; i < 200; ++i) {
    const double delay = p.next_delay(0.0, rng);
    if (std::isinf(delay)) continue;  // storm produced no arrival
    EXPECT_GE(delay, 10.0);
    EXPECT_LT(delay, 15.0);
  }
  EXPECT_TRUE(std::isinf(p.next_delay(15.0, rng)));
}

TEST(ArrivalProcess, DiurnalThinningRespectsTheEnvelope) {
  const ArrivalProcess p(ArrivalConfig::diurnal(100.0, 0.5), 0.2);
  EXPECT_DOUBLE_EQ(p.rate_at(0.0), 0.2);
  EXPECT_DOUBLE_EQ(p.rate_at(25.0), 0.3);  // sin peak: base * (1 + a)
  sim::Rng rng(5, 0);
  double mean = 0.0;
  const int draws = 2000;
  for (int i = 0; i < draws; ++i) {
    const double delay = p.next_delay(0.0, rng);
    ASSERT_TRUE(std::isfinite(delay));
    EXPECT_GT(delay, 0.0);
    mean += delay / draws;
  }
  // The mean inter-arrival must sit inside the rate envelope: between
  // 1 / (base * (1 + a)) and 1 / (base * (1 - a)).
  EXPECT_GT(mean, 1.0 / (0.2 * 1.5));
  EXPECT_LT(mean, 1.0 / (0.2 * 0.5));
}

// -------------------------------------------------- relay crash semantics --

/// A lossless, deterministic wired tree (mirrors test_membership's fixture).
struct Wired {
  sim::Simulator sim;
  sim::Rng channel_rng{7, 0};
  sim::Rng node_rng{7, 1};
  std::unique_ptr<protocols::Topology> topology;

  explicit Wired(ProtocolKind kind, const TreeSpec& spec,
                 double delay = 0.01) {
    const std::vector<sim::LossConfig> loss(spec.edges(),
                                            sim::LossConfig::iid(0.0));
    const std::vector<sim::DelayConfig> delays(
        spec.edges(),
        sim::DelayConfig{sim::DelayModel::kDeterministic, delay, 1.5});
    protocols::TimerSettings timers;  // R=5, T=15, deterministic
    topology = std::make_unique<protocols::Topology>(
        sim, channel_rng, node_rng, mechanisms(kind), timers, spec, loss,
        delays, nullptr);
  }
};

TEST(RelayCrash, CrashOrphansExactlyItsSubtree) {
  // Fanout-2 depth-2: relay 0 (node 1) feeds leaves 3, 4 via relays 2, 3;
  // relay 1 (node 2) feeds leaves 5, 6 via relays 4, 5.
  Wired w(ProtocolKind::kSS, TreeSpec::balanced(2, 2));
  protocols::Topology& t = *w.topology;
  t.sender().start(1);
  w.sim.run_until(1.0);
  for (std::size_t r = 0; r < t.relays(); ++r) {
    ASSERT_TRUE(t.relay(r).value().has_value()) << r;
  }

  t.relay(0).crash();
  EXPECT_TRUE(t.relay(0).crashed());
  // The crash drops the victim's copy instantly; membership bookkeeping is
  // untouched (its leaves are still joined, just orphaned).
  EXPECT_FALSE(t.relay(0).value().has_value());
  EXPECT_EQ(t.active_leaf_count(), 4u);

  // By one timeout later the victim's children starved (their refreshes
  // stopped at the dead relay) while the sibling subtree never noticed.
  w.sim.run_until(1.0 + 20.0);
  EXPECT_FALSE(t.relay(2).value().has_value());
  EXPECT_FALSE(t.relay(3).value().has_value());
  EXPECT_EQ(t.relay(1).value(), t.sender().value());
  EXPECT_EQ(t.relay(4).value(), t.sender().value());
  EXPECT_EQ(t.relay(5).value(), t.sender().value());

  // Recovery restores processing but not state: the parent's next refresh
  // re-installs the copy and the subtree heals top-down -- no detector.
  t.relay(0).recover();
  w.sim.run_until(1.0 + 20.0 + 12.0);  // > R (5 s) cascaded twice
  EXPECT_EQ(t.relay(0).value(), t.sender().value());
  EXPECT_EQ(t.relay(2).value(), t.sender().value());
  EXPECT_EQ(t.relay(3).value(), t.sender().value());
}

TEST(RelayCrash, CrashedRelayIsDeafUntilRecovery) {
  Wired w(ProtocolKind::kSS, TreeSpec::chain(2));
  protocols::Topology& t = *w.topology;
  t.sender().start(1);
  w.sim.run_until(1.0);
  t.relay(1).crash();
  // Refreshes keep flowing from the root through relay 0, but the dead
  // relay must not re-install from them.
  w.sim.run_until(1.0 + 12.0);
  EXPECT_FALSE(t.relay(1).value().has_value());
  t.relay(1).recover();
  w.sim.run_until(1.0 + 12.0 + 6.0);  // next refresh interval
  EXPECT_EQ(t.relay(1).value(), t.sender().value());
}

TEST(RelayCrash, RegraftEdgeRestoresHardStateFromTheParentsCopy) {
  // Hard state never refreshes: after crash + recovery the copy stays gone
  // until the detector-driven repair re-grafts from the parent.
  Wired w(ProtocolKind::kHS, TreeSpec::chain(2));
  protocols::Topology& t = *w.topology;
  t.sender().start(1);
  w.sim.run_until(1.0);
  t.relay(1).crash();
  t.relay(1).recover();
  w.sim.run_until(40.0);  // many refresh intervals: nothing re-installs
  EXPECT_FALSE(t.relay(1).value().has_value());
  t.regraft_edge(1);
  w.sim.run_until(41.0);
  EXPECT_EQ(t.relay(1).value(), t.sender().value());
}

// --------------------------------------------- scenario runs on the tree --

analytic::TreeParams scenario_tree(std::size_t fanout, std::size_t depth) {
  MultiHopParams base;
  base.loss = 0.01;
  base.delay = 0.01;
  base.update_rate = 1.0 / 60.0;
  return analytic::TreeParams::balanced(base, fanout, depth);
}

TEST(ScenarioRun, ZeroRatesReplayTheBaselineBitwise) {
  // A fully-defaulted scenario AND a scenario with every rate at zero but
  // non-default secondary knobs must both leave the run untouched -- the
  // scenario substreams exist but are never drawn from.
  const analytic::TreeParams tree = scenario_tree(2, 2);
  protocols::TreeSimOptions options;
  options.seed = 11;
  options.duration = 2000.0;
  options.churn.leaf_lifetime = 30.0;
  options.churn.rejoin_rate = 1.0 / 15.0;
  const protocols::TreeSimResult plain =
      protocols::run_tree(ProtocolKind::kSSRT, tree, options);

  protocols::TreeSimOptions zeroed = options;
  zeroed.scenario.failure.recovery_time = 99.0;   // crash_rate still 0
  zeroed.scenario.failure.detector_delay = 0.01;  // never consulted
  const protocols::TreeSimResult zero =
      protocols::run_tree(ProtocolKind::kSSRT, tree, zeroed);
  EXPECT_EQ(plain.messages, zero.messages);
  EXPECT_EQ(plain.metrics.inconsistency, zero.metrics.inconsistency);
  EXPECT_EQ(plain.churn, zero.churn);
  EXPECT_EQ(zero.relay_crashes, 0u);
  EXPECT_EQ(zero.relay_recoveries, 0u);
}

TEST(ScenarioRun, CrashProcessCrashesAndRecoversDeterministically) {
  const analytic::TreeParams tree = scenario_tree(2, 2);
  protocols::TreeSimOptions options;
  options.seed = 21;
  options.duration = 4000.0;
  options.scenario.failure = FailureConfig::relay_crash(1.0 / 50.0, 5.0, 2.0);
  for (const ProtocolKind kind : kMultiHopProtocols) {
    const protocols::TreeSimResult a = protocols::run_tree(kind, tree, options);
    EXPECT_GT(a.relay_crashes, 10u) << to_string(kind);
    EXPECT_GT(a.relay_recoveries, 10u) << to_string(kind);
    EXPECT_GE(a.relay_crashes, a.relay_recoveries) << to_string(kind);
    EXPECT_GT(a.metrics.inconsistency, 0.0) << to_string(kind);
    const protocols::TreeSimResult b = protocols::run_tree(kind, tree, options);
    EXPECT_EQ(a.messages, b.messages) << to_string(kind);
    EXPECT_EQ(a.relay_crashes, b.relay_crashes) << to_string(kind);
    EXPECT_EQ(a.metrics.inconsistency, b.metrics.inconsistency)
        << to_string(kind);
  }
}

TEST(ScenarioRun, DetectorLatencyCrossesHardStateOverSoftState) {
  // The acceptance lock: hard state repairs at ~max(downtime, detection),
  // soft state at ~downtime + R/2 regardless of the detector.  A detector
  // much faster than the refresh clock puts HS ahead of SS; one much
  // slower flips the ranking.
  const analytic::TreeParams tree = scenario_tree(2, 2);
  const auto inconsistency = [&](ProtocolKind kind, double detector) {
    protocols::TreeSimOptions options;
    options.seed = 29;
    options.duration = 8000.0;
    options.scenario.failure =
        FailureConfig::relay_crash(1.0 / 100.0, 5.0, detector);
    return protocols::run_tree(kind, tree, options).metrics.inconsistency;
  };
  const double ss_fast = inconsistency(ProtocolKind::kSS, 0.5);
  const double hs_fast = inconsistency(ProtocolKind::kHS, 0.5);
  const double ss_slow = inconsistency(ProtocolKind::kSS, 30.0);
  const double hs_slow = inconsistency(ProtocolKind::kHS, 30.0);
  EXPECT_LT(hs_fast, ss_fast);  // fast detector: HS repairs first
  EXPECT_GT(hs_slow, ss_slow);  // slow detector: the refresh clock wins
  EXPECT_GT(hs_slow, hs_fast);  // HS degrades monotonically in latency
}

TEST(ScenarioRun, SharedRiskBurstsDetachLeavesWithoutIidChurn) {
  // Churn disabled: the only leave source is the shared-risk process, and
  // with rejoin rate zero departed leaves stay detached.
  const analytic::TreeParams tree = scenario_tree(2, 2);
  protocols::TreeSimOptions options;
  options.seed = 31;
  options.duration = 500.0;
  options.scenario.shared_risk = SharedRiskConfig::bursts(1.0 / 40.0);
  const protocols::TreeSimResult result =
      protocols::run_tree(ProtocolKind::kSSER, tree, options);
  EXPECT_GT(result.churn.leaves, 0u);
  EXPECT_EQ(result.churn.joins, 0u);
  EXPECT_LE(result.churn.leaves, tree.tree.leaf_count());
}

TEST(ScenarioRun, FlashCrowdConcentratesRejoinsInTheStorm) {
  // Leaves churn out at the iid rate but can only come back inside the
  // storm window (base rejoin rate zero + flash modulation): every join the
  // run records is storm work.
  const analytic::TreeParams tree = scenario_tree(2, 2);
  protocols::TreeSimOptions options;
  options.seed = 37;
  options.duration = 1000.0;
  options.churn.leaf_lifetime = 40.0;
  options.churn.rejoin_rate = 0.0;
  options.scenario.arrival = ArrivalConfig::flash_crowd(200.0, 0.5, 100.0);
  const protocols::TreeSimResult storm =
      protocols::run_tree(ProtocolKind::kSSER, tree, options);
  EXPECT_GT(storm.churn.joins, 0u);

  protocols::TreeSimOptions no_storm = options;
  no_storm.scenario.arrival = ArrivalConfig::poisson();
  const protocols::TreeSimResult baseline =
      protocols::run_tree(ProtocolKind::kSSER, tree, no_storm);
  EXPECT_EQ(baseline.churn.joins, 0u);  // rejoin rate zero, no storm
  EXPECT_GT(storm.churn.joins, baseline.churn.joins);
}

// ------------------------------------------------ orphan-window censoring --

TEST(OrphanCensoring, RunEndingMidOrphanReportsTheCensoredBound) {
  // SS resolves orphans only at the T = 15 s timeout.  End the run well
  // before any timeout can fire: every orphan is still pending, so the
  // resolved mean must stay 0 while the censored bound accounts for the
  // elapsed windows.
  const analytic::TreeParams tree = scenario_tree(2, 2);
  protocols::TreeSimOptions options;
  options.seed = 41;
  options.duration = 10.0;
  options.churn.leaf_lifetime = 3.0;
  options.churn.rejoin_rate = 0.0;
  const protocols::TreeSimResult result =
      protocols::run_tree(ProtocolKind::kSS, tree, options);
  ASSERT_GT(result.churn.leaves, 0u);
  ASSERT_GT(result.churn.pending_orphans, 0u);
  EXPECT_EQ(result.churn.resolved_orphans, 0u);
  EXPECT_EQ(result.churn.mean_orphan_window(), 0.0);
  EXPECT_GT(result.churn.censored_orphan_window_sum, 0.0);
  EXPECT_GT(result.churn.mean_orphan_window_bound(), 0.0);
  // Each censored window is at most the run length.
  EXPECT_LE(result.churn.mean_orphan_window_bound(), options.duration);
}

TEST(OrphanCensoring, BoundBlendsResolvedAndPendingWindows) {
  // Longer run: some orphans resolve at the timeout, the last ones are
  // censored.  The bound must sit between 0 and the resolved mean (each
  // pending window is shorter than a full timeout) and absorb() must carry
  // the censored mass across replicas.
  const analytic::TreeParams tree = scenario_tree(2, 2);
  protocols::TreeSimOptions options;
  options.seed = 43;
  options.duration = 200.0;
  options.churn.leaf_lifetime = 20.0;
  options.churn.rejoin_rate = 1.0 / 10.0;
  const protocols::TreeSimResult result =
      protocols::run_tree(ProtocolKind::kSS, tree, options);
  ASSERT_GT(result.churn.resolved_orphans, 0u);
  EXPECT_GT(result.churn.mean_orphan_window_bound(), 0.0);
  protocols::ChurnReport merged;
  merged.absorb(result.churn);
  merged.absorb(result.churn);
  EXPECT_EQ(merged.censored_orphan_window_sum,
            2.0 * result.churn.censored_orphan_window_sum);
  EXPECT_EQ(merged.mean_orphan_window_bound(),
            result.churn.mean_orphan_window_bound());
}

// ------------------------------------------------------- scenario farm ----

TEST(ScenarioFarm, FullScenarioIsBitIdenticalAcrossShardsAndThreads) {
  exp::SessionFarmOptions base;
  base.seed = 47;
  base.sessions = 48;
  base.arrival_rate = 4.0;
  base.session_lifetime = 80.0;
  base.leaf_churn.leaf_lifetime = 20.0;
  base.leaf_churn.rejoin_rate = 1.0 / 10.0;
  base.scenario.failure = FailureConfig::relay_crash(1.0 / 30.0, 4.0, 2.0);
  base.scenario.arrival = ArrivalConfig::flash_crowd(15.0, 1.0, 20.0);
  base.scenario.shared_risk = SharedRiskConfig::bursts(1.0 / 60.0);
  base.shard_size = 48;
  base.threads = 1;
  const analytic::TreeParams tree = scenario_tree(2, 2);
  const exp::SessionFarmResult one =
      exp::run_session_farm(ProtocolKind::kHS, tree, base);
  EXPECT_GT(one.relay_crashes, 0u);
  EXPECT_GT(one.churn.leaves, 0u);
  for (const std::size_t shard_size : {7u, 16u}) {
    for (const std::size_t threads : {2u, 8u}) {
      exp::SessionFarmOptions sharded = base;
      sharded.shard_size = shard_size;
      sharded.threads = threads;
      const exp::SessionFarmResult many =
          exp::run_session_farm(ProtocolKind::kHS, tree, sharded);
      EXPECT_EQ(one.churn, many.churn)
          << "shard " << shard_size << " threads " << threads;
      EXPECT_EQ(one.messages, many.messages);
      EXPECT_EQ(one.relay_crashes, many.relay_crashes);
      EXPECT_EQ(one.relay_recoveries, many.relay_recoveries);
      EXPECT_EQ(one.summary.mean.inconsistency,
                many.summary.mean.inconsistency);
    }
  }
}

TEST(ScenarioFarm, ZeroRateScenarioMatchesTheChurnFarmBitwise) {
  exp::SessionFarmOptions options;
  options.seed = 53;
  options.sessions = 32;
  options.arrival_rate = 4.0;
  options.session_lifetime = 60.0;
  options.leaf_churn.leaf_lifetime = 25.0;
  options.leaf_churn.rejoin_rate = 1.0 / 10.0;
  options.shard_size = 16;
  options.threads = 2;
  const analytic::TreeParams tree = scenario_tree(2, 2);
  const exp::SessionFarmResult plain =
      exp::run_session_farm(ProtocolKind::kSSER, tree, options);
  exp::SessionFarmOptions zeroed = options;
  zeroed.scenario.failure.detector_delay = 0.5;  // crash_rate still 0
  const exp::SessionFarmResult zero =
      exp::run_session_farm(ProtocolKind::kSSER, tree, zeroed);
  EXPECT_EQ(plain.messages, zero.messages);
  EXPECT_EQ(plain.churn, zero.churn);
  EXPECT_EQ(plain.summary.mean.inconsistency, zero.summary.mean.inconsistency);
  EXPECT_EQ(zero.relay_crashes, 0u);
}

TEST(ScenarioFarm, SingleHopFarmsRejectScenarios) {
  SingleHopParams params;
  exp::SessionFarmOptions options;
  options.sessions = 8;
  options.scenario.failure = FailureConfig::relay_crash(0.1);
  options.threads = 1;
  EXPECT_THROW((void)exp::run_session_farm(ProtocolKind::kSS, params, options),
               std::invalid_argument);
}

// ------------------------------------------------------ teardown hygiene --

TEST(ScenarioTeardown, StopMidCrashLeavesNoDanglingEventsAndAFlatPool) {
  sim::Simulator sim;
  const TreeSpec spec = TreeSpec::balanced(2, 2);
  const std::vector<sim::LossConfig> loss(spec.edges(),
                                          sim::LossConfig::iid(0.0));
  const std::vector<sim::DelayConfig> delay(
      spec.edges(),
      sim::DelayConfig{sim::DelayModel::kDeterministic, 0.02, 1.5});
  protocols::ChurnOptions churn;
  churn.leaf_lifetime = 3.0;
  churn.rejoin_rate = 1.0;
  ScenarioOptions scenario;
  scenario.failure = FailureConfig::relay_crash(1.0 / 2.0, 3.0, 1.0);
  scenario.shared_risk = SharedRiskConfig::bursts(1.0 / 4.0);

  for (const ProtocolKind kind : kAllProtocols) {
    std::size_t flat_capacity = 0;
    for (int cycle = 0; cycle < 10; ++cycle) {
      // Fresh streams at fixed seeds every cycle: each cycle replays the
      // SAME scenario trace (crashes, recoveries, detections, bursts and
      // churn timers all in flight at the cutoff), so any pool growth
      // after the first cycle is a straggler event, not workload variance.
      sim::Rng channel_rng(55, 0);
      sim::Rng node_rng(55, 1);
      sim::Rng membership_rng(55, 2);
      sim::Rng arrival_rng(55, 3);
      sim::Rng failure_rng(55, 4);
      protocols::TimerSettings timers;
      auto topology = std::make_unique<protocols::Topology>(
          sim, channel_rng, node_rng, mechanisms(kind), timers, spec, loss,
          delay, nullptr);
      auto controller = std::make_unique<protocols::MembershipController>(
          sim, *topology, membership_rng, churn, scenario, &arrival_rng,
          nullptr);
      auto failure = std::make_unique<protocols::RelayFailureProcess>(
          sim, *topology, failure_rng, scenario.failure,
          mechanisms(kind).external_failure_detector);
      topology->sender().start(1);
      controller->start();
      failure->start();
      sim.run_until(sim.now() + 9.7);
      controller->finish();
      failure->stop();
      topology->stop();
      // Leftover channel deliveries and dead timers must drain without
      // resurrecting anything.
      sim.run();
      EXPECT_TRUE(sim.idle()) << to_string(kind) << " cycle " << cycle;
      EXPECT_EQ(sim.pending_events(), 0u) << to_string(kind);
      failure.reset();
      controller.reset();
      topology.reset();
      if (cycle == 0) {
        flat_capacity = sim.slot_capacity();
      } else {
        EXPECT_EQ(sim.slot_capacity(), flat_capacity)
            << to_string(kind) << ": event pool grew at cycle " << cycle;
      }
    }
  }
}

// ------------------------------------------------------ option validation --

TEST(ScenarioValidation, RejectsBadValuesWithTheOptionNamed) {
  const auto message_of = [](const ScenarioOptions& options) {
    try {
      options.validate();
      return std::string();
    } catch (const std::invalid_argument& e) {
      return std::string(e.what());
    }
  };
  ScenarioOptions negative_crash;
  negative_crash.failure.crash_rate = -1.0;
  EXPECT_NE(message_of(negative_crash).find("crash_rate"), std::string::npos);

  ScenarioOptions negative_detector;
  negative_detector.failure.crash_rate = 0.1;
  negative_detector.failure.detector_delay = -2.0;
  EXPECT_NE(message_of(negative_detector).find("detector_delay"),
            std::string::npos);

  // Build the bad arrival configs field-by-field: the factory helpers
  // validate eagerly, and here the deferred ScenarioOptions::validate path
  // (the one the CLI routes through) is under test.
  ScenarioOptions bad_amplitude;
  bad_amplitude.arrival.model = protocols::ArrivalModel::kDiurnal;
  bad_amplitude.arrival.period = 100.0;
  bad_amplitude.arrival.amplitude = 1.5;
  EXPECT_NE(message_of(bad_amplitude).find("amplitude"), std::string::npos);

  ScenarioOptions no_period;
  no_period.arrival.model = protocols::ArrivalModel::kDiurnal;
  no_period.arrival.amplitude = 0.5;
  EXPECT_NE(message_of(no_period).find("period"), std::string::npos);

  ScenarioOptions negative_burst;
  negative_burst.shared_risk.burst_rate = -0.5;
  EXPECT_NE(message_of(negative_burst).find("burst_rate"), std::string::npos);

  ScenarioOptions infinite_flash;
  infinite_flash.arrival.model = protocols::ArrivalModel::kFlashCrowd;
  infinite_flash.arrival.flash_rate = std::numeric_limits<double>::infinity();
  infinite_flash.arrival.flash_duration = 10.0;
  EXPECT_NE(message_of(infinite_flash).find("flash_rate"), std::string::npos);
}

TEST(ScenarioValidation, TreeRunValidatesTheScenario) {
  protocols::TreeSimOptions options;
  options.duration = 10.0;
  options.scenario.failure.crash_rate = -1.0;
  EXPECT_THROW((void)protocols::run_tree(ProtocolKind::kSS,
                                         scenario_tree(2, 2), options),
               std::invalid_argument);
}

TEST(ScenarioValidation, ActiveMembershipScenarioNeedsAScenarioRng) {
  Wired w(ProtocolKind::kSS, TreeSpec::balanced(2, 2));
  protocols::ChurnOptions churn;
  churn.leaf_lifetime = 10.0;
  churn.rejoin_rate = 0.1;
  ScenarioOptions scenario;
  scenario.arrival = ArrivalConfig::diurnal(100.0, 0.5);
  sim::Rng membership_rng(9, 0);
  EXPECT_THROW(protocols::MembershipController(w.sim, *w.topology,
                                               membership_rng, churn, scenario,
                                               nullptr, nullptr),
               std::invalid_argument);
}

TEST(ScenarioValidation, SingleHopRejectsNegativeCrashDetectionDelay) {
  SingleHopParams params;
  protocols::SimOptions options;
  options.sessions = 1;
  options.crash_detection_delay = -1.0;
  EXPECT_THROW((void)protocols::run_single_hop(ProtocolKind::kHS, params,
                                               options),
               std::invalid_argument);
}

}  // namespace
}  // namespace sigcomp
