// Event tracing for simulation debugging and auditing.
//
// A TraceLog is a bounded in-memory record of timestamped, categorized
// events.  Harnesses attach it optionally; it costs nothing when absent.
#pragma once

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.hpp"

namespace sigcomp::sim {

/// Category of a trace record (coarse filter key).
enum class TraceCategory : std::uint8_t {
  kSend,     ///< message handed to a channel
  kDeliver,  ///< message delivered to a sink
  kDrop,     ///< message lost by the channel
  kTimer,    ///< protocol timer fired
  kState,    ///< node state changed (install/update/remove)
  kSession,  ///< session lifecycle (start/absorb/crash)
};

/// Canonical name of a trace category ("send", "deliver", ...).
[[nodiscard]] std::string_view to_string(TraceCategory category) noexcept;

/// One trace record.
struct TraceRecord {
  Time time = 0.0;                                ///< simulation time
  TraceCategory category = TraceCategory::kState; ///< coarse filter key
  std::string detail;                             ///< free-form description

  friend bool operator==(const TraceRecord&,
                         const TraceRecord&) = default;  ///< field-wise equality
};

/// Bounded trace buffer: keeps the most recent `capacity` records.
class TraceLog {
 public:
  /// Creates a log retaining at most `capacity` records.
  explicit TraceLog(std::size_t capacity = 65536);

  /// Appends a record, evicting the oldest when full.
  void record(Time time, TraceCategory category, std::string detail);

  /// Currently retained records.
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  /// Maximum retained records before eviction.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Records ever recorded, including evicted ones.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept { return total_; }
  /// True when no record is retained.
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// All retained records, oldest first.
  [[nodiscard]] const std::deque<TraceRecord>& records() const noexcept {
    return records_;
  }

  /// Records matching one category, oldest first.
  [[nodiscard]] std::vector<TraceRecord> filter(TraceCategory category) const;

  /// Count of retained records per category.
  [[nodiscard]] std::size_t count(TraceCategory category) const;

  /// Drops all retained records (total_recorded is preserved).
  void clear();

  /// Writes "time category detail" lines, oldest first.
  void dump(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
  std::uint64_t total_ = 0;
};

}  // namespace sigcomp::sim
