// Figure 8: inconsistency ratio versus (a) the state-timeout timer T in
// [0.1, 1000] s with R fixed at 5 s, and (b) the retransmission timer Gamma
// in [0.1, 10] s, for all five protocols (single hop defaults).
//
// Usage: fig08_timers [--csv PATH] (timeout sweep; Gamma sweep goes to
// PATH + ".retrans.csv")
#include <iostream>

#include "core/evaluator.hpp"
#include "exp/sweep.hpp"
#include "exp/table.hpp"

int main(int argc, char** argv) {
  using namespace sigcomp;

  exp::Table timeout_table(
      "Fig. 8(a): I vs state-timeout timer T (refresh R = 5 s)",
      {"timeout_s", "I(SS)", "I(SS+ER)", "I(SS+RT)", "I(SS+RTR)", "I(HS)"});
  for (const double timeout : exp::log_space(0.1, 1000.0, 17)) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.timeout_timer = timeout;
    std::vector<exp::Cell> row{timeout};
    for (const ProtocolKind kind : kAllProtocols) {
      row.emplace_back(evaluate_analytic(kind, p).inconsistency);
    }
    timeout_table.add_row(std::move(row));
  }
  timeout_table.print(std::cout);
  std::cout << '\n';

  exp::Table retrans_table(
      "Fig. 8(b): I vs retransmission timer Gamma",
      {"retrans_s", "I(SS)", "I(SS+ER)", "I(SS+RT)", "I(SS+RTR)", "I(HS)"});
  for (const double retrans : exp::log_space(0.1, 10.0, 13)) {
    SingleHopParams p = SingleHopParams::kazaa_defaults();
    p.retrans_timer = retrans;
    std::vector<exp::Cell> row{retrans};
    for (const ProtocolKind kind : kAllProtocols) {
      row.emplace_back(evaluate_analytic(kind, p).inconsistency);
    }
    retrans_table.add_row(std::move(row));
  }
  retrans_table.print(std::cout);

  const std::string csv = exp::csv_path_from_args(argc, argv);
  if (!csv.empty()) {
    timeout_table.write_csv_file(csv);
    retrans_table.write_csv_file(csv + ".retrans.csv");
  }
  return 0;
}
