#include "core/evaluator.hpp"

#include "analytic/multi_hop.hpp"
#include "analytic/single_hop.hpp"

namespace sigcomp {

Metrics evaluate_analytic(ProtocolKind kind, const SingleHopParams& params) {
  return analytic::evaluate_single_hop(kind, params);
}

Metrics evaluate_analytic(ProtocolKind kind, const MultiHopParams& params) {
  return analytic::evaluate_multi_hop(kind, params);
}

protocols::SimResult evaluate_simulated(ProtocolKind kind,
                                        const SingleHopParams& params,
                                        const protocols::SimOptions& options) {
  return protocols::run_single_hop(kind, params, options);
}

protocols::MultiHopSimResult evaluate_simulated(
    ProtocolKind kind, const MultiHopParams& params,
    const protocols::MultiHopSimOptions& options) {
  return protocols::run_multi_hop(kind, params, options);
}

std::vector<ProtocolMetrics> compare_all(const SingleHopParams& params) {
  std::vector<ProtocolMetrics> out;
  out.reserve(kAllProtocols.size());
  for (const ProtocolKind kind : kAllProtocols) {
    out.push_back({kind, evaluate_analytic(kind, params)});
  }
  return out;
}

std::vector<ProtocolMetrics> compare_all(const MultiHopParams& params) {
  std::vector<ProtocolMetrics> out;
  out.reserve(kMultiHopProtocols.size());
  for (const ProtocolKind kind : kMultiHopProtocols) {
    out.push_back({kind, evaluate_analytic(kind, params)});
  }
  return out;
}

}  // namespace sigcomp
